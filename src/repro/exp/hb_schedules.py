"""Known-bad (and known-clean) schedules for the hb race checker.

Each schedule builds a fresh testbed, drives a specific interleaving,
and runs :func:`repro.hb.checker.consume` over the recorded trace.
The known-bad schedules reconstruct the bug classes the ordering
model exists to catch -- a detector that stays silent on its own bug
class is dead, and :func:`run_hb_schedules` reports that as failure
so CI can gate on it:

* ``reordered-commit`` -- the serial deploy ablation with the commit
  CAS posted on a sibling QP concurrently with the body write: the
  completion-fallacy bug (a completion on one QP says nothing about
  another QP's posts).  A sharded-SQ deploy engine that splits body
  and commit across QPs for throughput ships exactly this race.
* ``fenceless-stale-writer`` -- a superseded control plane keeps
  writing through the raw sync layer after its successor raised the
  target's epoch, skipping ``check_fence``.
* ``torn-install`` -- a writer rewrites a live image range while the
  data path executes it; no bubble, no fresh pages, no flush edge.
* ``bubble-race`` -- two owners flip the bubble word concurrently
  (broadcast raising vs a reconciler-style sweep lowering).
* ``delta-chunk-reordered`` -- a delta hotpatch whose dirty chunk
  ships on a sibling QP while the commit CAS goes out on the primary:
  the sharded-SQ variant of the completion fallacy, where the commit
  can land before the chunk it publishes.
* ``delta-stale-baseline`` -- after a warm reboot and re-provision, a
  stale delta engine patches the extent it recorded as the dormant
  baseline -- which the fresh deploy now runs live.
* ``relay-commit-before-body`` -- the tree-broadcast variant of the
  completion fallacy: a relay forwards the image body over its own QP
  while the control plane, trusting the handoff alone, posts the
  commit CAS directly -- without the relay's status report there is
  no edge ordering the commit after the forwarded chunks, so the hook
  can flip onto bytes still in flight.
* ``clean-deploy`` -- the control: inject, redeploy, and data-path
  executions through the real stack must produce zero findings.

Run directly for the CI gate::

    PYTHONPATH=src python -m repro.exp.hb_schedules
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import params
from repro.core.control_plane import _pd_of
from repro.core.sync import RemoteSync
from repro.ebpf.stress import make_stress_program, make_stress_variant
from repro.errors import SandboxCrash
from repro.exp.harness import Testbed, format_table, make_testbed
from repro.hb import checker
from repro.hb import events as hb_events
from repro.mem.layout import pack_qword
from repro.rdma.verbs import connect_qps, open_device
from repro.sandbox.sandbox import Sandbox


@dataclass
class ScheduleResult:
    """One schedule's verdict."""

    name: str
    #: Finding kind this schedule must produce (None = must be clean).
    expect: Optional[str]
    kinds: list[str] = field(default_factory=list)
    events: int = 0
    findings: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if self.expect is None:
            return not self.findings
        return self.expect in self.kinds

    @property
    def detail(self) -> str:
        if not self.findings:
            return "clean"
        return ",".join(sorted(set(self.kinds)))


@dataclass
class HbSchedulesResult:
    seed: int
    schedules: list[ScheduleResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.schedules) and all(s.ok for s in self.schedules)


def sibling_sync(bed: Testbed, sandbox: Sandbox) -> RemoteSync:
    """A sibling QP to ``sandbox`` from the control host.

    Same initiator, same target, different send queue -- the minimal
    setup where "the other op's completion came back" stops being an
    ordering fact.
    """
    target_ctx = open_device(sandbox.host)
    target_qp = target_ctx.create_qp(_pd_of(sandbox), target_ctx.create_cq())
    local_ctx = open_device(bed.control.host)
    local_qp = local_ctx.create_qp(local_ctx.alloc_pd(), local_ctx.create_cq())
    connect_qps(local_qp, target_qp)
    assert sandbox.ctx_manifest is not None
    return RemoteSync(bed.sim, local_qp, sandbox.ctx_manifest.rkey, sandbox)


def _finish(bed: Testbed, result: ScheduleResult) -> ScheduleResult:
    report = checker.consume(bed.sim)
    result.events = report.events
    result.findings = report.findings
    result.kinds = [f.kind for f in report.findings]
    return result


def _schedule_clean_deploy(seed: int) -> ScheduleResult:
    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed)
    sim = bed.sim
    sandbox = bed.sandboxes[0]

    def drive():
        for version in range(2):
            program = make_stress_program(
                150, seed=seed * 17 + version, name="hbclean"
            )
            yield from bed.control.inject(bed.codeflow, program, "ingress")
            for _ in range(3):
                sandbox.run_hook("ingress", bytes(256))
                yield sim.timeout(5.0)

    sim.run_process(drive())
    return _finish(bed, ScheduleResult("clean-deploy", expect=None))


def _schedule_reordered_commit(seed: int) -> ScheduleResult:
    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed)
    sim = bed.sim
    sandbox = bed.sandboxes[0]
    body_sync = bed.codeflow.sync
    commit_sync = sibling_sync(bed, sandbox)
    assert sandbox.ctx_manifest is not None
    code_addr = sandbox.ctx_manifest.code_addr
    hook_addr = sandbox.hook_table.slot_addr("ingress")
    body = bytes(range(256)) * 24  # ~6KB: lands in two MTU chunks

    note = hb_events.txn_note(publishes=(code_addr, len(body)))
    sim.spawn(
        body_sync.write(code_addr, body, note={"txn": note["txn"]}),
        name="hb-body",
    )
    sim.spawn(
        commit_sync.cas(hook_addr, 0, code_addr, note=note), name="hb-commit"
    )
    sim.run(until=sim.now + 10_000)
    return _finish(
        bed, ScheduleResult("reordered-commit", expect="commit-before-body")
    )


def _schedule_fenceless_stale_writer(seed: int) -> ScheduleResult:
    from repro.core.control_plane import RdxControlPlane

    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed)
    sim = bed.sim
    sandbox = bed.sandboxes[0]
    stale_sync = bed.codeflow.sync  # epoch 1, about to be superseded

    def drive():
        # A successor incarnation claims the next epoch from the same
        # journal and fences the target.
        successor = RdxControlPlane(
            bed.control.host, journal=bed.control.journal
        )
        yield from successor.create_codeflow(sandbox)
        # The fenced-out plane keeps writing through the raw sync
        # layer -- no check_fence, the bug this detector exists for.
        assert sandbox.ctx_manifest is not None
        yield from stale_sync.write(
            sandbox.ctx_manifest.metadata_addr, b"\xde\xad" * 64
        )

    sim.run_process(drive())
    return _finish(
        bed,
        ScheduleResult("fenceless-stale-writer", expect="stale-epoch-write"),
    )


def _schedule_torn_install(seed: int) -> ScheduleResult:
    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed)
    sim = bed.sim
    sandbox = bed.sandboxes[0]
    program = make_stress_program(400, seed=seed + 5, name="hbtorn")
    sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
    record = bed.codeflow.deployed[program.name]
    writer = sibling_sync(bed, sandbox)
    junk = b"\xcc" * record.code_len
    # Overwrite the live image in place -- no fresh pages, no pointer
    # flip -- while the data path executes it.
    sim.spawn(writer.write(record.code_addr, junk), name="hb-clobber")
    sim.run(until=sim.now + 2.5)  # mid-landing: first chunk is down
    try:
        sandbox.run_hook("ingress", bytes(256))
    except SandboxCrash:
        pass  # decoding the torn image may well crash -- that's the bug
    sandbox.crashed = False
    sim.run(until=sim.now + 10_000)
    return _finish(bed, ScheduleResult("torn-install", expect="torn-exec"))


def _schedule_bubble_race(seed: int) -> ScheduleResult:
    bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed)
    sim = bed.sim
    sandbox = bed.sandboxes[0]
    raiser = bed.codeflow.sync
    lowerer = sibling_sync(bed, sandbox)
    bubble = sandbox.bubble_addr
    sim.spawn(raiser.write(bubble, pack_qword(1)), name="hb-raise")
    sim.spawn(lowerer.write(bubble, pack_qword(0)), name="hb-lower")
    sim.run(until=sim.now + 10_000)
    return _finish(bed, ScheduleResult("bubble-race", expect="bubble-race"))


def _schedule_delta_chunk_reordered(seed: int) -> ScheduleResult:
    """A delta chunk posted on a sibling QP, racing its commit CAS.

    v1/v2 deploy through the real stack (registering v1's extent as
    the delta baseline), then a broken sharded-SQ delta engine ships
    the dirty span on a second QP while the commit CAS goes out on the
    primary: the CAS's completion says nothing about the sibling QP's
    chunk, so the published extent can go live half-patched.
    """
    saved = params.RDX_DELTA_DEPLOY
    params.RDX_DELTA_DEPLOY = True
    try:
        bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed)
        sim = bed.sim
        sandbox = bed.sandboxes[0]
        v1 = make_stress_program(400, seed=seed + 3, name="hbdelta")
        v2 = make_stress_variant(v1, 1)
        sim.run_process(bed.control.inject(bed.codeflow, v1, "ingress"))
        sim.run_process(bed.control.inject(bed.codeflow, v2, "ingress"))
        record = bed.codeflow.deployed["hbdelta"]
        assert record.baseline_addr is not None
        hook_addr = sandbox.hook_table.slot_addr("ingress")

        note = hb_events.txn_note(
            publishes=(record.baseline_addr, record.code_len)
        )
        chunk_sync = sibling_sync(bed, sandbox)
        sim.spawn(
            chunk_sync.write(
                record.baseline_addr + 256, b"\xd7" * 64,
                note={"txn": note["txn"]},
            ),
            name="hb-delta-chunk",
        )
        sim.spawn(
            bed.codeflow.sync.cas(
                hook_addr, record.code_addr, record.baseline_addr, note=note
            ),
            name="hb-delta-commit",
        )
        sim.run(until=sim.now + 10_000)
        return _finish(
            bed,
            ScheduleResult(
                "delta-chunk-reordered", expect="commit-before-body"
            ),
        )
    finally:
        params.RDX_DELTA_DEPLOY = saved


def _schedule_delta_stale_baseline(seed: int) -> ScheduleResult:
    """Delta chunks against a baseline that stopped existing.

    The engine records (baseline addr, baseline bytes), then the
    target warm-reboots and is re-provisioned: the wiped allocator
    hands the *fresh live image* the same extent the stale engine
    knows as the dormant baseline.  Its precomputed dirty span then
    lands in code the data path is executing.
    """
    saved = params.RDX_DELTA_DEPLOY
    params.RDX_DELTA_DEPLOY = True
    try:
        bed = make_testbed(n_hosts=1, cores_per_host=4, seed=seed)
        sim = bed.sim
        sandbox = bed.sandboxes[0]
        v1 = make_stress_program(400, seed=seed + 9, name="hbstale")
        v2 = make_stress_variant(v1, 1)
        sim.run_process(bed.control.inject(bed.codeflow, v1, "ingress"))
        sim.run_process(bed.control.inject(bed.codeflow, v2, "ingress"))
        record = bed.codeflow.deployed["hbstale"]
        stale_base = record.baseline_addr
        assert stale_base is not None

        sandbox.warm_reboot()
        bed.codeflow.reset_after_reboot()
        fresh = make_stress_program(400, seed=seed + 23, name="hbfresh")
        sim.run_process(bed.control.inject(bed.codeflow, fresh, "ingress"))
        # Address reuse is the point: the reset allocator put the
        # fresh live image where the stale baseline used to be.
        assert bed.codeflow.deployed["hbfresh"].code_addr == stale_base

        writer = sibling_sync(bed, sandbox)
        sim.spawn(
            writer.write(stale_base + 256, b"\xd7" * 64),
            name="hb-stale-delta",
        )
        sim.run(until=sim.now + 2.5)  # mid-landing
        try:
            sandbox.run_hook("ingress", bytes(256))
        except SandboxCrash:
            pass  # decoding the half-patched image may crash -- the bug
        sandbox.crashed = False
        sim.run(until=sim.now + 10_000)
        return _finish(
            bed, ScheduleResult("delta-stale-baseline", expect="torn-exec")
        )
    finally:
        params.RDX_DELTA_DEPLOY = saved


def relay_sync(bed: Testbed, parent: Sandbox, child: Sandbox) -> RemoteSync:
    """A tree-relay QP: ``parent``'s host initiating into ``child``.

    The same wiring :meth:`CodeFlowGroup._relay_sync` builds for the
    real tree fan-out -- but here it is handed to a *broken* relay
    engine that never sends its status report back.
    """
    parent_ctx = open_device(parent.host)
    local_qp = parent_ctx.create_qp(
        parent_ctx.alloc_pd(), parent_ctx.create_cq()
    )
    target_ctx = open_device(child.host)
    target_qp = target_ctx.create_qp(_pd_of(child), target_ctx.create_cq())
    connect_qps(local_qp, target_qp)
    assert child.ctx_manifest is not None
    return RemoteSync(bed.sim, local_qp, child.ctx_manifest.rkey, child)


def _schedule_relay_commit_before_body(seed: int) -> ScheduleResult:
    """A relay forwards the body; the control plane commits directly.

    The real tree deploy keeps body and commit on ONE relay QP (SQ
    FIFO orders them) and only acts on the leg after the relay's
    report.  This schedule reconstructs the tempting-but-broken
    optimization: the control plane posts the child's commit CAS on
    its own QP as soon as it has *handed off* the body, treating the
    handoff as if it were the report.  No edge orders the commit
    after the relayed chunks -- the hook can flip onto a half-landed
    image, and the detector must say so.
    """
    bed = make_testbed(n_hosts=2, cores_per_host=4, seed=seed)
    sim = bed.sim
    parent, child = bed.sandboxes
    body_sync = relay_sync(bed, parent, child)
    commit_sync = bed.codeflows[1].sync  # control plane -> child, direct
    assert child.ctx_manifest is not None
    code_addr = child.ctx_manifest.code_addr
    hook_addr = child.hook_table.slot_addr("ingress")
    body = bytes(range(256)) * 24  # ~6KB: lands in two MTU chunks

    note = hb_events.txn_note(publishes=(code_addr, len(body)))
    sim.spawn(
        body_sync.write(code_addr, body, note={"txn": note["txn"]}),
        name="hb-relay-body",
    )
    sim.spawn(
        commit_sync.cas(hook_addr, 0, code_addr, note=note),
        name="hb-relay-commit",
    )
    sim.run(until=sim.now + 10_000)
    return _finish(
        bed,
        ScheduleResult("relay-commit-before-body", expect="commit-before-body"),
    )


_SCHEDULES = (
    _schedule_clean_deploy,
    _schedule_reordered_commit,
    _schedule_fenceless_stale_writer,
    _schedule_torn_install,
    _schedule_bubble_race,
    _schedule_delta_chunk_reordered,
    _schedule_delta_stale_baseline,
    _schedule_relay_commit_before_body,
)


def run_hb_schedules(seed: int = 0) -> HbSchedulesResult:
    """Run every schedule with checking forced on; restore the flag."""
    result = HbSchedulesResult(seed=seed)
    saved = params.RDX_HB_CHECK
    params.RDX_HB_CHECK = True
    try:
        for schedule in _SCHEDULES:
            result.schedules.append(schedule(seed))
    finally:
        params.RDX_HB_CHECK = saved
    return result


def format_report(result: HbSchedulesResult) -> str:
    rows = [
        [
            s.name,
            s.expect or "(clean)",
            s.detail,
            s.events,
            "ok" if s.ok else "FAIL",
        ]
        for s in result.schedules
    ]
    lines = [
        format_table(
            "hb known-bad schedule validation",
            ["schedule", "expected", "found", "hb events", "verdict"],
            rows,
        )
    ]
    for s in result.schedules:
        if not s.ok and s.findings:
            lines.append(f"-- unexpected findings for {s.name}:")
            lines.extend(f.describe() for f in s.findings)
        elif not s.ok:
            lines.append(
                f"-- DEAD DETECTOR: {s.name} produced no "
                f"{s.expect} finding"
            )
    return "\n".join(lines)


def main() -> int:
    result = run_hb_schedules()
    print(format_report(result))
    if not result.ok:
        print("hb schedule validation FAILED")
        return 1
    print("all detectors fire on their bug class; clean schedule is clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
