"""Experiment harness: one module per paper figure/table.

Each experiment module exposes a ``run_*`` function returning a
structured result and a module-level ``PAPER`` record of what the
paper reports, so benchmarks and ``EXPERIMENTS.md`` compare shapes
(who wins, by what factor) rather than absolute testbed numbers.
"""

from repro.exp.harness import Testbed, format_table, make_testbed
from repro.exp.fault_campaign import FaultCampaignResult, run_fault_campaign
from repro.exp.fig2a import run_fig2a
from repro.exp.hb_schedules import HbSchedulesResult, run_hb_schedules
from repro.exp.fig2b import run_fig2b
from repro.exp.fig2c import run_fig2c
from repro.exp.fig4a import run_fig4a
from repro.exp.fig4b import run_fig4b
from repro.exp.fig5 import run_fig5
from repro.exp.serve_workload import (
    ServeWorkloadResult,
    ServeWorkloadSpec,
    run_serve_workload,
)
from repro.exp.tab_redis import run_tab_redis
from repro.exp.tab_mesh import run_tab_mesh
from repro.exp.tab_broadcast import run_tab_broadcast
from repro.exp.tab_rollback import run_tab_rollback

__all__ = [
    "FaultCampaignResult",
    "HbSchedulesResult",
    "ServeWorkloadResult",
    "ServeWorkloadSpec",
    "Testbed",
    "format_table",
    "make_testbed",
    "run_fault_campaign",
    "run_fig2a",
    "run_fig2b",
    "run_fig2c",
    "run_fig4a",
    "run_fig4b",
    "run_fig5",
    "run_hb_schedules",
    "run_serve_workload",
    "run_tab_broadcast",
    "run_tab_mesh",
    "run_tab_redis",
    "run_tab_rollback",
]
