"""Collective CodeFlow / BBU experiment (paper §4).

Paper claims: (1) ``rdx_broadcast`` performs microsecond-scale,
transactionally consistent cluster-wide updates; (2) Big Bubble Update
becomes *practical* because the buffer only has to hold
``rate x bubble_window`` requests -- with agent-scale windows (100 ms
at 10M req/s) that is ~1M requests, with RDX windows it is a handful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.api import rdx_broadcast
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed

PAPER = {
    "claim": "atomic cluster-wide rollout in microseconds",
    "agent_example_buffer": 1_000_000,  # 10M req/s x 100 ms (§2.2)
    "rate_example_req_s": 10_000_000,
}


@dataclass
class TabBroadcastRow:
    group_size: int
    bubble_window_us: float
    total_us: float
    #: Requests a 10M req/s app would buffer during the bubble.
    bbu_buffer_requests: float
    #: Same app under a 100 ms agent-style update window (paper §2.2).
    agent_buffer_requests: float = PAPER["agent_example_buffer"]


@dataclass
class TabBroadcastResult:
    rows: list[TabBroadcastRow] = field(default_factory=list)


def run_tab_broadcast(
    group_sizes: Sequence[int] = (2, 4, 8),
    insn_size: int = 1_300,
    rate_req_s: float = 10_000_000.0,
) -> TabBroadcastResult:
    """Broadcast one update to n nodes; report window + buffer need."""
    result = TabBroadcastResult()
    for n in group_sizes:
        bed = make_testbed(n_hosts=n, with_agents=False)
        programs = [
            make_stress_program(insn_size, seed=i + 3, name=f"bcast{i}")
            for i in range(n)
        ]
        # Warm the registry: validate/compile each program once.
        for program, codeflow in zip(programs, bed.codeflows):
            bed.sim.run_process(
                bed.control.prepare(program, arch=codeflow.manifest.arch)
            )
        outcome = bed.sim.run_process(
            rdx_broadcast(bed.codeflows, programs, "ingress")
        )
        result.rows.append(
            TabBroadcastRow(
                group_size=n,
                bubble_window_us=outcome.bubble_window_us,
                total_us=outcome.total_us,
                bbu_buffer_requests=rate_req_s * outcome.bubble_window_us / 1e6,
            )
        )
    return result
