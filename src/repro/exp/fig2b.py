"""Fig 2b -- update inconsistency duration across application sizes.

Paper claim: rolling out interdependent extensions across apps of 4,
11, 17, and 33 microservices leaves inconsistency windows of tens to
hundreds of milliseconds under the agent baseline's eventual
consistency, for both eBPF- and Wasm-based extensions (§2.2 Obs 2).

We build each app, push a version-2 extension to every service at
once (eventual consistency), and measure the window between the first
and last service switching logic.  A live consistency probe
cross-checks that *requests* really observe mixed versions inside
that window (Wasm series).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.agent.controller import AgentController
from repro.agent.rollout import RolloutPlan, rollout_eventual
from repro.ebpf.stress import make_stress_program
from repro.mesh.apps import AppSpec, MicroserviceApp, PAPER_APPS
from repro.mesh.consistency import ConsistencyProbe
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_header_filter

PAPER = {
    "claim": "inconsistency spans O(100 ms) even below 20 microservices",
    "apps": PAPER_APPS,
    "scale": "window grows with service count",
}


@dataclass
class Fig2bPoint:
    app: str
    n_services: int
    family: str  # "ebpf" | "wasm"
    window_us: float
    update_interval_us: float
    violations: int
    mixed_requests: int = 0


@dataclass
class Fig2bResult:
    points: list[Fig2bPoint] = field(default_factory=list)

    def series(self, family: str) -> list[tuple[int, float]]:
        return [
            (p.n_services, p.window_us / 1000.0)
            for p in self.points
            if p.family == family
        ]


def run_fig2b(
    apps: Sequence[tuple[str, int]] = PAPER_APPS,
    families: Sequence[str] = ("ebpf", "wasm"),
    ebpf_insns: int = 12_000,
    wasm_padding: int = 2_000,
    probe: bool = True,
    probe_interval_us: float = 2_000.0,
) -> Fig2bResult:
    """Measure rollout inconsistency for each app and family.

    ``ebpf_insns`` / ``wasm_padding`` size the rolled-out extensions;
    defaults approximate production filter footprints.  Tests shrink
    them for speed -- the *shape* (window grows with service count) is
    size-independent.
    """
    result = Fig2bResult()
    for label, n_services in apps:
        for family in families:
            point = _run_one(
                label, n_services, family, ebpf_insns, wasm_padding,
                probe, probe_interval_us,
            )
            result.points.append(point)
    return result


def _run_one(
    label: str,
    n_services: int,
    family: str,
    ebpf_insns: int,
    wasm_padding: int,
    probe: bool,
    probe_interval_us: float,
) -> Fig2bPoint:
    sim = Simulator()
    app = MicroserviceApp(sim, AppSpec(n_services=n_services))
    controller_host = Host(sim, "controller.host", cores=8, dram_bytes=16 * 2**20)
    app.fabric.attach(controller_host)
    # Two concurrent config streams: even the 4-service app rolls out
    # in waves, as production management planes do.
    controller = AgentController(controller_host, max_concurrent_pushes=2)

    if family == "wasm":
        # Install version 1 everywhere first, so the probe sees a
        # coherent baseline before the rollout starts.
        v1 = make_header_filter(version=1, padding=wasm_padding)
        for service, agent in app.agents_by_service().items():
            sim.run_process(agent.inject(v1, "filter0"))
        programs = {
            service: [make_header_filter(version=2, padding=wasm_padding)]
            for service in app.services()
        }
    else:
        programs = {
            service: [
                make_stress_program(
                    ebpf_insns, seed=index + 2, name=f"{service}_v2"
                )
            ]
            for index, service in enumerate(app.services())
        }

    plan = RolloutPlan(
        services=app.agents_by_service(),
        programs=programs,
        dependencies=app.dependency_map(),
        hook_name="filter0",
    )

    prober = None
    if probe and family == "wasm":
        prober = ConsistencyProbe(app, interval_us=probe_interval_us)
        prober.start(duration_us=10_000_000)

    rollout = sim.run_process(rollout_eventual(controller, plan))
    if prober is not None:
        # Let the probe observe a little past the rollout, then stop.
        sim.run(until=sim.now + 10 * probe_interval_us)
        prober.stop()
    sim.run()

    mixed = 0
    if prober is not None:
        mixed = prober.result().mixed_count
    return Fig2bPoint(
        app=label,
        n_services=n_services,
        family=family,
        window_us=rollout.inconsistency_window_us,
        update_interval_us=rollout.update_interval_us,
        violations=len(rollout.violations(plan)),
        mixed_requests=mixed,
    )
