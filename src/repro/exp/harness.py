"""Shared experiment plumbing: the standard testbed and reporting."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.agent.daemon import NodeAgent
from repro.core.codeflow import CodeFlow
from repro.core.control_plane import RdxControlPlane
from repro.core.api import bootstrap_sandbox
from repro.net.topology import Cluster, Host
from repro.obs import Telemetry, telemetry_of
from repro.sandbox.sandbox import Sandbox
from repro.sim.core import Simulator
from repro.sim.trace import TraceRecorder


@dataclass
class Testbed:
    """The paper's §6 rack: data hosts + a dedicated control server.

    Each data host carries one sandbox; agents and CodeFlows are both
    wired so experiments can drive either path on the same hardware.
    """

    sim: Simulator
    cluster: Cluster
    sandboxes: list[Sandbox]
    agents: list[NodeAgent]
    control: RdxControlPlane
    codeflows: list[CodeFlow]
    trace: TraceRecorder

    @property
    def obs(self) -> Telemetry:
        """This testbed's telemetry hub (metrics + spans)."""
        return telemetry_of(self.sim)

    @property
    def host(self) -> Host:
        return self.cluster.hosts[0]

    @property
    def sandbox(self) -> Sandbox:
        return self.sandboxes[0]

    @property
    def agent(self) -> NodeAgent:
        return self.agents[0]

    @property
    def codeflow(self) -> CodeFlow:
        return self.codeflows[0]


def make_testbed(
    n_hosts: int = 1,
    cores_per_host: int = 24,
    hooks: tuple[str, ...] = ("ingress", "egress"),
    cpki: float = 5.0,
    with_agents: bool = True,
    with_codeflows: bool = True,
    seed: int = 0,
    sim: Optional[Simulator] = None,
) -> Testbed:
    """Build the standard single-rack testbed.

    ``sim`` lets a caller pre-configure the simulator before any
    component touches it -- the fuzz engine uses this to install its
    decision tape and bounded trace recorder ahead of construction.
    """
    if sim is None:
        sim = Simulator()
    trace = TraceRecorder()
    cluster = Cluster(
        sim, n_hosts=n_hosts, cores_per_host=cores_per_host,
        dram_bytes=64 * 2**20, cpki=cpki, seed=seed,
    )
    sandboxes = []
    agents = []
    for host in cluster.hosts:
        sandbox = Sandbox(host, hooks=hooks)
        bootstrap_sandbox(sandbox)
        sandboxes.append(sandbox)
        if with_agents:
            agents.append(NodeAgent(host, sandbox, trace=trace))
    assert cluster.control_host is not None
    control = RdxControlPlane(cluster.control_host, trace=trace)
    codeflows = []
    if with_codeflows:
        for sandbox in sandboxes:
            codeflow = sim.run_process(control.create_codeflow(sandbox))
            codeflows.append(codeflow)
    return Testbed(
        sim=sim,
        cluster=cluster,
        sandboxes=sandboxes,
        agents=agents,
        control=control,
        codeflows=codeflows,
        trace=trace,
    )


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render an aligned text table (what benches print)."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in text_rows))
        if text_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(note)
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        if cell >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def write_bench_json(
    bench: str,
    rows: Sequence[dict],
    directory: Optional[str] = None,
) -> str:
    """Dump machine-readable bench results to ``BENCH_<name>.json``.

    Each row is ``{bench, metric, value, unit, sim_time}``; missing
    ``bench`` keys are filled in.  The directory defaults to
    ``$RDX_BENCH_DIR`` (CI sets it per ablation arm) or the current
    working directory.  Returns the path written, so benches can print
    it next to their tables.
    """
    directory = directory or os.environ.get("RDX_BENCH_DIR") or "."
    os.makedirs(directory, exist_ok=True)
    normalized = []
    for row in rows:
        entry = {
            "bench": bench,
            "metric": "",
            "value": None,
            "unit": "",
            "sim_time": None,
        }
        entry.update(row)
        normalized.append(entry)
    path = os.path.join(directory, f"BENCH_{bench}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(normalized, handle, indent=2)
        handle.write("\n")
    return path


def median(values: Sequence[float]) -> float:
    """Median without pulling in statistics for one call."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2
