"""Rollback-under-contention experiment (paper §4 + §2.2 "lockout").

Paper claims: agent-path recovery competes with the very CPU
saturation it is trying to relieve (lockout effect); RDX rolls a
faulty extension back in microseconds via a hardware-level pointer
flip, independent of host load.

Setup: the host CPU is saturated with background work.  The agent
rollback must queue behind it; the RDX rollback is one
``flip_to`` + flush.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.rollback import RollbackManager
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed

PAPER = {
    "claim": "rollback in microseconds even under full CPU load",
    "agent_scale": "ms..s, grows with contention",
}


@dataclass
class TabRollbackResult:
    load_level: float
    agent_rollback_us: float
    rdx_rollback_us: float

    @property
    def speedup(self) -> float:
        if self.rdx_rollback_us <= 0:
            return 0.0
        return self.agent_rollback_us / self.rdx_rollback_us


def run_tab_rollback(
    busy_fraction: float = 0.95,
    insn_size: int = 11_000,
    cores: int = 4,
) -> TabRollbackResult:
    """Measure both rollback paths under background CPU saturation."""
    bed = make_testbed(n_hosts=1, cores_per_host=cores)
    stable = make_stress_program(insn_size, seed=2, name="ext")
    faulty = make_stress_program(insn_size, seed=9, name="ext")

    # Deploy stable then faulty via RDX so history exists for rollback.
    bed.sim.run_process(bed.control.inject(bed.codeflow, stable, "egress"))
    bed.sim.run_process(bed.control.inject(bed.codeflow, faulty, "egress"))

    # Saturate the host CPU with background tasks for the whole run.
    horizon_us = 5_000_000.0

    def burner(core: int) -> Generator:
        while bed.sim.now < horizon_us:
            yield from bed.host.cpu.run(1_000.0 * busy_fraction)
            yield bed.sim.timeout(1_000.0 * (1.0 - busy_fraction) + 1e-6)

    for core in range(cores * 2):
        bed.sim.spawn(burner(core), name=f"burn{core}")

    # RDX rollback: transactional flip, no host CPU.
    manager = RollbackManager(bed.codeflow)
    start = bed.sim.now
    record = bed.sim.run_process(manager.rollback("ext"))
    rdx_us = record.duration_us
    del start

    # Agent rollback: re-inject the stable program locally, queueing
    # behind the saturated cores.
    mark = bed.sim.now
    breakdown = bed.sim.run_process(bed.agent.inject(stable, "ingress"))
    agent_us = breakdown.total_us
    del mark

    return TabRollbackResult(
        load_level=busy_fraction,
        agent_rollback_us=agent_us,
        rdx_rollback_us=rdx_us,
    )
