"""Crash campaign: broadcasts under an adversarial fault schedule.

Drives the full deploy-reliability stack end to end: each round arms
one fault (payload corruption, transient transport error, node crash,
link partition, or none) against a random target, runs a cluster-wide
``rdx_broadcast``, and checks the §4 invariants afterwards:

* **no stranded targets** -- every reachable sandbox's bubble flag is
  lowered whether the round committed, aborted, or degraded;
* **all-or-nothing** -- an aborted round leaves every reachable hook
  running the previous round's image;
* **absorption** -- one-shot transient faults are retried away and the
  round commits as if nothing happened.

``allow_partial=True`` runs the quorum mode instead: rounds with a dead
target commit ``degraded`` on the survivors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.core.broadcast import CodeFlowGroup
from repro.core.faults import FaultInjector, FaultKind
from repro.ebpf.stress import make_stress_program, make_stress_variant
from repro.errors import BroadcastAborted
from repro.exp.harness import make_testbed

#: Fault schedule entries a campaign draws from ("none" = clean round).
CAMPAIGN_KINDS = (
    None,
    FaultKind.TORN_WRITE,
    FaultKind.BIT_FLIP,
    FaultKind.TRANSIENT,
    FaultKind.NODE_CRASH,
    FaultKind.LINK_PARTITION,
)


@dataclass
class CampaignRound:
    """One broadcast attempt under one (or no) armed fault."""

    index: int
    fault: str
    target: str
    committed: bool = False
    aborted: bool = False
    degraded: bool = False
    #: Bubble flags all lowered on reachable hosts afterwards.
    bubbles_clear: bool = False
    retries: int = 0
    abort_us: float = 0.0
    error: str = ""


@dataclass
class FaultCampaignResult:
    n_hosts: int
    rounds_run: int
    seed: int
    allow_partial: bool
    rounds: list[CampaignRound] = field(default_factory=list)
    #: Rounds that left any reachable bubble raised (must stay 0).
    stranded: int = 0
    aborts: int = 0
    degraded: int = 0
    committed: int = 0
    retries_total: int = 0
    faults_injected: int = 0
    #: Deploy legs that shipped as deltas (``hotpatch=True`` rounds).
    delta_deploys: int = 0
    #: One-sided telemetry scrapes performed (when ``scrape=True``).
    scrapes: int = 0
    scrape_retries: int = 0
    scrape_torn: int = 0


def _counter_total(obs, name: str) -> float:
    """Sum a counter across all label sets."""
    return sum(
        row["value"]
        for row in obs.registry.snapshot()
        if row["name"] == name and row["type"] == "counter"
    )


def run_fault_campaign(
    n_hosts: int = 3,
    rounds: int = 8,
    seed: int = 0,
    allow_partial: bool = False,
    program_insns: int = 400,
    testbed=None,
    scrape: bool = False,
    hotpatch: bool = False,
) -> FaultCampaignResult:
    """Run ``rounds`` faulted broadcasts on an ``n_hosts`` testbed.

    ``scrape=True`` attaches a :class:`~repro.obs.scrape.TelemetryScraper`
    behind a lease detector and runs a one-sided metric scrape of every
    target after each healed round -- the agentless monitoring loop
    exercised under the same fault schedule as the deploys.

    ``hotpatch=True`` makes every round a one-instruction variant of
    the same base program per target -- the layout fingerprint then
    holds across rounds, so with :data:`repro.params.RDX_DELTA_DEPLOY`
    set, steady-state rounds ship as deltas and the whole fault
    schedule lands on the delta path (fresh targets, just-rebooted
    targets, and post-rollback rounds still fall back to full).
    """
    rng = random.Random(seed)
    bed = testbed or make_testbed(n_hosts=n_hosts, cores_per_host=8, seed=seed)
    group = CodeFlowGroup(bed.codeflows)
    result = FaultCampaignResult(
        n_hosts=n_hosts, rounds_run=rounds, seed=seed,
        allow_partial=allow_partial,
    )
    health = None
    if scrape:
        from repro.core.health import HealthDetector
        from repro.obs.scrape import TelemetryScraper

        scraper = TelemetryScraper(bed.codeflows)
        health = HealthDetector(bed.codeflows, scraper=scraper)

    bases = [
        make_stress_program(program_insns, seed=i + 1, name=f"campaign{i}")
        for i in range(len(bed.codeflows))
    ] if hotpatch else []

    def programs(version: int):
        # Same name every round: each commit chains onto the hook's
        # history, so an abort has a prior image to roll back to.
        if hotpatch:
            return [
                make_stress_variant(base, version) for base in bases
            ]
        return [
            make_stress_program(
                program_insns, seed=version * 31 + i, name=f"campaign{i}"
            )
            for i in range(len(bed.codeflows))
        ]

    # Round 0 baseline: a clean broadcast so later aborts roll back to
    # a known-good image rather than detaching.
    bed.sim.run_process(group.broadcast(programs(1), "ingress"))

    for index in range(rounds):
        kind = rng.choice(CAMPAIGN_KINDS)
        target_index = rng.randrange(len(bed.codeflows))
        codeflow = bed.codeflows[target_index]
        injector = FaultInjector(codeflow, seed=seed * 101 + index)
        entry = CampaignRound(
            index=index,
            fault=kind.value if kind else "none",
            target=codeflow.sandbox.name,
        )
        retries_before = _counter_total(bed.obs, "rdx.retry.attempts")
        if kind is not None:
            injector.arm(kind)
            injector.attach()
        try:
            outcome = bed.sim.run_process(
                group.broadcast(
                    programs(index + 2), "ingress",
                    allow_partial=allow_partial,
                )
            )
            entry.committed = True
            entry.degraded = outcome.degraded
        except BroadcastAborted as err:
            entry.aborted = True
            entry.abort_us = err.result.abort_us if err.result else 0.0
            entry.error = str(err)
        finally:
            injector.detach()
            injector.disarm()
        # The §4 invariant, checked while the fault still holds: no
        # *reachable* sandbox is left buffering behind a raised bubble.
        # (A crashed host's flag may survive in DRAM until the next
        # broadcast lowers it -- its data path is down regardless.)
        entry.bubbles_clear = all(
            sandbox.bubble_active() is False
            for sandbox in bed.sandboxes
            if not sandbox.host.crashed
        )
        # Heal the environment for the next round.
        injector.recover_target()
        injector.heal_partition()
        injector.delay_target(0)
        if health is not None:
            # Agentless monitoring round: lease probe + piggybacked
            # one-sided scrape of every target's telemetry segment.
            bed.sim.run_process(health.probe_all())
        entry.retries = int(
            _counter_total(bed.obs, "rdx.retry.attempts") - retries_before
        )
        if not entry.bubbles_clear:
            result.stranded += 1
        result.aborts += int(entry.aborted)
        result.degraded += int(entry.degraded)
        result.committed += int(entry.committed)
        result.retries_total += entry.retries
        result.rounds.append(entry)

    result.faults_injected = int(
        _counter_total(bed.obs, "rdx.faults.injected")
    )
    result.delta_deploys = int(_counter_total(bed.obs, "rdx.deploy.delta"))
    if scrape:
        result.scrapes = int(_counter_total(bed.obs, "rdx.scrape.count"))
        result.scrape_retries = int(
            _counter_total(bed.obs, "rdx.scrape.retries")
        )
        result.scrape_torn = int(_counter_total(bed.obs, "rdx.scrape.torn"))
    return result
