"""Fig 4b -- injection-time breakdown at 1.3K instructions.

Paper claim: the agent's load time decomposes into verify, JIT
compile, and other overheads, with verify+JIT >= 90%; RDX's path
contains neither -- its time is dispatch + write + commit + coherence
(§2.2 Obs 1, §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ebpf.stress import make_stress_program
from repro.exp.harness import Testbed, make_testbed

PAPER = {
    "size": 1_300,
    "claim": "agent time is dominated by verify + JIT; RDX has neither",
    "verify_jit_share_min": 0.90,
}


@dataclass
class Fig4bResult:
    insn_size: int
    agent_phases_us: dict[str, float] = field(default_factory=dict)
    rdx_phases_us: dict[str, float] = field(default_factory=dict)

    @property
    def agent_total_us(self) -> float:
        return sum(self.agent_phases_us.values())

    @property
    def rdx_total_us(self) -> float:
        return sum(self.rdx_phases_us.values())

    @property
    def agent_verify_jit_share(self) -> float:
        compile_us = self.agent_phases_us.get("verify", 0.0) + self.agent_phases_us.get(
            "jit", 0.0
        )
        total = self.agent_total_us
        return compile_us / total if total else 0.0


def run_fig4b(
    insn_size: int = 1_300, testbed: Testbed | None = None
) -> Fig4bResult:
    """Collect per-phase timings for both paths at one size."""
    bed = testbed or make_testbed()
    program = make_stress_program(insn_size, seed=5)

    agent_breakdown = bed.sim.run_process(bed.agent.inject(program, "ingress"))

    # Warm the registry, then measure the deploy path.
    bed.sim.run_process(
        bed.control.inject(bed.codeflow, program, "egress", retain_history=False)
    )
    report = bed.sim.run_process(
        bed.control.inject(bed.codeflow, program, "egress", retain_history=False)
    )

    return Fig4bResult(
        insn_size=insn_size,
        agent_phases_us=dict(agent_breakdown.phases()),
        rdx_phases_us=dict(report.phases()),
    )
