"""Open-loop multi-tenant serving workload (the §7 service at scale).

A population of ~1000 tenants in three priority classes drives a
:class:`~repro.serve.DeployService` open-loop (arrivals don't wait for
completions -- overload shows up as counted shedding, not as a
slowed-down generator):

* **hot-patch** tenants re-deploy small variants of a shared pool of
  popular programs -- the warm pool's bread and butter;
* **bulk** tenants roll large programs, each tenant reusing its own;
* **cold** tenants deploy never-seen-before programs every time, so
  each one pays the full validate+JIT+link pipeline.

The result separates *service* latency (dequeue to install-visible) by
warm/cold so the warm pool's skip-the-pipeline win is measurable
independently of queueing, alongside sustained deploys/sec, exact p50/
p95/p99 end-to-end latency per class, and the full shed ledger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.ebpf.stress import make_stress_program, make_stress_variant
from repro.exp.harness import Testbed, make_testbed
from repro.serve import DeployService, DeployTicket, default_classes


@dataclass
class ServeWorkloadSpec:
    """Knobs for one open-loop serving run."""

    n_tenants: int = 1000
    n_targets: int = 8
    duration_us: float = 2_000_000.0
    #: Tenant-population mix (fractions of ``n_tenants``).
    hot_fraction: float = 0.5
    bulk_fraction: float = 0.2
    # The remainder is the cold fraction.
    #: Mean inter-arrival per *tenant class aggregate*, us.
    hot_period_us: float = 400.0
    bulk_period_us: float = 4_000.0
    cold_period_us: float = 1_500.0
    #: Shared popular programs the hot-patch tenants draw from.
    n_hot_programs: int = 12
    hot_insns: int = 64
    bulk_insns: int = 512
    cold_insns: int = 300
    seed: int = 7
    #: Pre-link the hot program pool before opening the doors.
    prewarm: bool = True


def percentile(values: list, q: float) -> float:
    """Exact (nearest-rank, interpolated) percentile of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


@dataclass
class ServeWorkloadResult:
    """What one run measured."""

    duration_us: float = 0.0
    offered: int = 0
    completed: int = 0
    failed: int = 0
    shed: dict = field(default_factory=dict)
    unaccounted: int = 0
    deploys_per_sec: float = 0.0
    #: End-to-end (submit -> install-visible) latency percentiles, us.
    latency_p50_us: float = 0.0
    latency_p95_us: float = 0.0
    latency_p99_us: float = 0.0
    per_class_p99_us: dict = field(default_factory=dict)
    #: Service latency (dequeue -> install-visible), split by path.
    warm_service_p50_us: float = 0.0
    cold_service_p50_us: float = 0.0
    warm_hits: int = 0
    warm_misses: int = 0
    warm_evictions: int = 0


def run_serve_workload(
    spec: Optional[ServeWorkloadSpec] = None,
    testbed: Optional[Testbed] = None,
) -> tuple[ServeWorkloadResult, DeployService]:
    """Drive one open-loop serving run; returns (result, service)."""
    spec = spec or ServeWorkloadSpec()
    bed = testbed or make_testbed(
        n_hosts=spec.n_targets, cores_per_host=8, seed=spec.seed
    )
    sim = bed.sim
    rng = random.Random(spec.seed)
    service = DeployService(bed.control, classes=default_classes())

    # -- tenant population ---------------------------------------------------
    n_hot = int(spec.n_tenants * spec.hot_fraction)
    n_bulk = int(spec.n_tenants * spec.bulk_fraction)
    n_cold = spec.n_tenants - n_hot - n_bulk
    hot_tenants = [f"hot{i}" for i in range(n_hot)]
    bulk_tenants = [f"bulk{i}" for i in range(n_bulk)]
    cold_tenants = [f"cold{i}" for i in range(n_cold)]
    for tenant in hot_tenants:
        service.register(tenant, "hotpatch")
    for tenant in bulk_tenants:
        service.register(tenant, "bulk")
    for tenant in cold_tenants:
        service.register(tenant, "standard")

    # -- program pools -------------------------------------------------------
    hot_pool = [
        make_stress_program(
            spec.hot_insns, seed=spec.seed + i, name=f"hotprog{i}"
        )
        for i in range(spec.n_hot_programs)
    ]
    bulk_progs = {
        tenant: make_stress_program(
            spec.bulk_insns, seed=spec.seed + 1000 + i, name=f"bulkprog{i}"
        )
        for i, tenant in enumerate(bulk_tenants)
    }
    cold_serial = [0]  # unique-program counter for the cold stream

    tickets: list[DeployTicket] = []

    def pick_flow():
        return bed.codeflows[rng.randrange(len(bed.codeflows))]

    # -- arrival processes (open loop: fire and record) -----------------------
    def hot_arrivals() -> Generator:
        while sim.now < spec.duration_us:
            yield sim.timeout(rng.expovariate(1.0 / spec.hot_period_us))
            tenant = rng.choice(hot_tenants)
            program = rng.choice(hot_pool)
            tickets.append(
                service.submit(
                    tenant, pick_flow(), program, "ingress", kind="hot"
                )
            )

    def bulk_arrivals() -> Generator:
        while sim.now < spec.duration_us:
            yield sim.timeout(rng.expovariate(1.0 / spec.bulk_period_us))
            tenant = rng.choice(bulk_tenants)
            tickets.append(
                service.submit(
                    tenant, pick_flow(), bulk_progs[tenant], "egress",
                    kind="bulk",
                )
            )

    def cold_arrivals() -> Generator:
        while sim.now < spec.duration_us:
            yield sim.timeout(rng.expovariate(1.0 / spec.cold_period_us))
            tenant = rng.choice(cold_tenants)
            cold_serial[0] += 1
            program = make_stress_program(
                spec.cold_insns,
                seed=spec.seed + 10_000 + cold_serial[0],
                name=f"coldprog{cold_serial[0]}",
            )
            tickets.append(
                service.submit(
                    tenant, pick_flow(), program, "ingress", kind="cold"
                )
            )

    def body() -> Generator:
        if spec.prewarm:
            # Off-critical-path admission: pre-link the popular pool
            # for every target layout before opening the doors.
            for flow in bed.codeflows:
                for program in hot_pool:
                    yield from service.warm_pool.prewarm(flow, program)
        service.start()
        procs = [
            sim.spawn(hot_arrivals(), name="arrivals.hot"),
            sim.spawn(bulk_arrivals(), name="arrivals.bulk"),
            sim.spawn(cold_arrivals(), name="arrivals.cold"),
        ]
        start = sim.now
        for proc in procs:
            yield proc
        # Arrivals stopped; let accepted work drain fully.
        yield from service.drain()
        pending = [t.done for t in tickets if t.accepted]
        for done in pending:
            yield done
        return sim.now - start

    elapsed = sim.run_process(body())

    # -- measurements ----------------------------------------------------------
    done = [t for t in tickets if t.completed]
    latencies = [t.latency_us for t in done]
    per_class: dict[str, list] = {}
    for ticket in done:
        per_class.setdefault(ticket.class_name, []).append(ticket.latency_us)
    # Warm/cold split on *service* latency: the hot pool rides the warm
    # pool (report.warm), the cold stream pays validate+JIT+link.
    warm_service = [
        t.service_us for t in done if t.report is not None and t.report.warm
    ]
    cold_service = [t.service_us for t in done if t.kind == "cold"]

    accounting = service.accounting()
    result = ServeWorkloadResult(
        duration_us=elapsed,
        offered=accounting["offered"],
        completed=accounting["completed"],
        failed=accounting["failed"],
        shed=accounting["shed"],
        unaccounted=accounting["unaccounted"],
        deploys_per_sec=(
            accounting["completed"] / (elapsed / 1e6) if elapsed else 0.0
        ),
        latency_p50_us=percentile(latencies, 0.50),
        latency_p95_us=percentile(latencies, 0.95),
        latency_p99_us=percentile(latencies, 0.99),
        per_class_p99_us={
            name: percentile(vals, 0.99) for name, vals in per_class.items()
        },
        warm_service_p50_us=percentile(warm_service, 0.50),
        cold_service_p50_us=percentile(cold_service, 0.50),
        warm_hits=service.warm_pool.hits,
        warm_misses=service.warm_pool.misses,
        warm_evictions=service.warm_pool.evictions,
    )
    return result, service
