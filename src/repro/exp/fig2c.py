"""Fig 2c -- control/data-path contention under request load.

Paper claim: with the host CPUs near saturation, application request
completion can be *halved* while extensions are being injected,
because agent work (CPU-heavy validation) and request serving share
cores (§2.2 Obs 3).  The effect is amplified by high-density agent
deployment (one agent per pod, several pods per node).

We drive one service at increasing offered load while ``n_streams``
per-pod agents continuously validate/compile incoming extensions, and
compare in-window completion rates against an injection-free run on
identical hardware and seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.agent.daemon import NodeAgent
from repro.ebpf.stress import make_stress_program
from repro.mesh.apps import AppSpec, MicroserviceApp
from repro.sandbox.sandbox import Sandbox
from repro.sim.core import Simulator

PAPER = {
    "claim": "completion rate ~halves near saturation during injection",
    "x_axis_req_s": (100, 200, 300, 400),
}


@dataclass
class Fig2cPoint:
    offered_req_s: float
    completion_no_contention: float
    completion_with_contention: float

    @property
    def degradation(self) -> float:
        if self.completion_no_contention <= 0:
            return 0.0
        return 1.0 - (
            self.completion_with_contention / self.completion_no_contention
        )


@dataclass
class Fig2cResult:
    points: list[Fig2cPoint] = field(default_factory=list)

    def max_degradation(self) -> float:
        return max((p.degradation for p in self.points), default=0.0)


def run_fig2c(
    rates: Sequence[float] = (100, 200, 300, 400),
    duration_us: float = 1_000_000.0,
    inject_insns: int = 40_000,
    cores: int = 4,
    n_streams: int = 2,
    inject_gap_us: float = 30_000.0,
) -> Fig2cResult:
    """Sweep offered load with and without injection contention.

    ``cores=4`` with 10 ms of per-request CPU saturates near
    400 req/s, matching the figure's x-range.  ``n_streams`` models
    per-pod agent density: each stream keeps one agent busy
    validating extensions back to back.
    """
    result = Fig2cResult()
    for rate in rates:
        clean = _run_one(rate, duration_us, 0, inject_insns, cores, inject_gap_us)
        contended = _run_one(
            rate, duration_us, n_streams, inject_insns, cores, inject_gap_us
        )
        result.points.append(
            Fig2cPoint(
                offered_req_s=rate,
                completion_no_contention=clean,
                completion_with_contention=contended,
            )
        )
    return result


def _run_one(
    rate: float,
    duration_us: float,
    n_streams: int,
    inject_insns: int,
    cores: int,
    inject_gap_us: float,
) -> float:
    from repro.mesh.workload import OpenLoopLoad

    sim = Simulator()
    app = MicroserviceApp(
        sim, AppSpec(n_services=1, cores_per_host=cores, with_agents=True)
    )
    pod = app.pods["svc0"]
    # Per-request CPU sized so `cores` cores saturate at ~400 req/s.
    hop_us = cores * 1e6 / 400.0

    for stream in range(n_streams):
        # High-density agents: one sandbox + agent per pod, all on the
        # same host CPU.
        sandbox = Sandbox(
            pod.host,
            name=f"pod{stream}.sb",
            hooks=("ingress",),
            code_bytes=2 * 2**20,
            scratchpad_bytes=1 * 2**20,
        )
        # eBPF verification runs in the bpf(2) syscall -- kernel CPU
        # time that the scheduler serves ahead of queued userspace
        # request work, hence priority -1.
        agent = NodeAgent(
            pod.host, sandbox, service=f"agent:pod{stream}", priority=-1
        )

        program = make_stress_program(
            inject_insns, seed=stream + 1, name=f"stream{stream}"
        )

        def churn(agent: NodeAgent = agent, program=program) -> Generator:
            while sim.now < duration_us:
                yield from agent.inject(program, "ingress")
                if inject_gap_us:
                    yield sim.timeout(inject_gap_us)

        sim.spawn(churn(), name=f"inject-burst{stream}")

    load = OpenLoopLoad(app, rate_per_s=rate, seed=int(rate), hop_service_us=hop_us)
    stats = sim.run_process(load.run(duration_us))
    in_window = sum(
        1
        for record in stats.records
        if not record.denied
        and not record.crashed
        and record.finished_us <= duration_us
    )
    return in_window / (duration_us / 1e6)
