"""Fig 4a -- eBPF program load overhead, Agent vs RDX.

Paper claim: over BPF-selftest stress programs of 1.3K-95K
instructions, RDX reduces injection completion time by 47x-1982x,
mainly by removing verification + JIT from the injection path (§6).

We deploy each size repeatedly through (a) a node agent and (b) a
CodeFlow with a warm registry ("validate once, deploy anywhere"), and
report mean completion time plus the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.ebpf.stress import STRESS_SIZES, make_stress_program
from repro.exp.harness import Testbed, make_testbed

PAPER = {
    "sizes": STRESS_SIZES,
    "speedup_min": 47.0,
    "speedup_max": 1982.0,
    "claim": "orders-of-magnitude lower injection time across all sizes",
}


@dataclass
class Fig4aPoint:
    insn_size: int
    agent_us: float
    rdx_us: float

    @property
    def speedup(self) -> float:
        return self.agent_us / self.rdx_us if self.rdx_us else 0.0


@dataclass
class Fig4aResult:
    points: list[Fig4aPoint] = field(default_factory=list)

    def speedups(self) -> list[float]:
        return [p.speedup for p in self.points]


def run_fig4a(
    sizes: Sequence[int] = STRESS_SIZES,
    repeats: int = 3,
    testbed: Testbed | None = None,
) -> Fig4aResult:
    """Measure agent vs RDX injection latency across sizes."""
    bed = testbed or make_testbed()
    result = Fig4aResult()
    for size in sizes:
        program = make_stress_program(size, seed=size % 89 + 1)

        agent_times = []
        for _ in range(repeats):
            breakdown = bed.sim.run_process(
                bed.agent.inject(program, "ingress")
            )
            agent_times.append(breakdown.total_us)

        # Warm the registry once (validate-once), then measure the
        # repeat-deploy path the paper's 100K-iteration loop measures.
        bed.sim.run_process(
            bed.control.inject(
                bed.codeflow, program, "egress", retain_history=False
            )
        )
        rdx_times = []
        for _ in range(repeats):
            report = bed.sim.run_process(
                bed.control.inject(
                    bed.codeflow, program, "egress", retain_history=False
                )
            )
            rdx_times.append(report.total_us)

        result.points.append(
            Fig4aPoint(
                insn_size=size,
                agent_us=sum(agent_times) / len(agent_times),
                rdx_us=sum(rdx_times) / len(rdx_times),
            )
        )
    return result
