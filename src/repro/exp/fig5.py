"""Fig 5 -- incoherence time: vanilla RDMA vs RDX sync primitives.

Paper claim: after a one-sided injection, the target CPU keeps reading
stale cache lines until workload pressure evicts them -- a median of
up to ~746 us at low CPKI, falling as pressure rises.  RDX's
``rdx_tx`` + ``rdx_cc_event`` flush explicitly, holding the window at
~2 us across all CPKI levels (§3.5, §6).

The experiment plants a polling CPU loop on a hook qword, injects a
new value over RDMA, and measures when the CPU first observes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.exp.harness import median
from repro.core.control_plane import RdxControlPlane
from repro.core.api import bootstrap_sandbox
from repro.mem.layout import unpack_qword
from repro.net.topology import Cluster
from repro.sandbox.sandbox import Sandbox
from repro.sim.core import Simulator

PAPER = {
    "cpki_range": (5, 40),
    "vanilla_max_us": 746.0,
    "rdx_us": 2.0,
    "claim": "orders-of-magnitude lower incoherence across CPKI levels",
}


@dataclass
class Fig5Point:
    cpki: float
    vanilla_median_us: float
    rdx_median_us: float


@dataclass
class Fig5Result:
    points: list[Fig5Point] = field(default_factory=list)

    def series(self, which: str) -> list[tuple[float, float]]:
        if which == "vanilla":
            return [(p.cpki, p.vanilla_median_us) for p in self.points]
        return [(p.cpki, p.rdx_median_us) for p in self.points]


def run_fig5(
    cpki_levels: Sequence[float] = (5, 10, 15, 20, 25, 30, 35, 40),
    trials: int = 31,
    poll_interval_us: float = 0.5,
) -> Fig5Result:
    """Sweep CPKI and measure both modes' median incoherence window."""
    result = Fig5Result()
    for cpki in cpki_levels:
        vanilla = _trials(cpki, trials, poll_interval_us, use_rdx=False)
        rdx = _trials(cpki, trials, poll_interval_us, use_rdx=True)
        result.points.append(
            Fig5Point(
                cpki=cpki,
                vanilla_median_us=median(vanilla),
                rdx_median_us=median(rdx),
            )
        )
    return result


def _trials(
    cpki: float, trials: int, poll_interval_us: float, use_rdx: bool
) -> list[float]:
    sim = Simulator()
    cluster = Cluster(sim, n_hosts=1, cpki=cpki, seed=int(cpki) * 31 + 7)
    target = cluster.hosts[0]
    sandbox = Sandbox(target, hooks=("ingress",))
    bootstrap_sandbox(sandbox)
    control = RdxControlPlane(cluster.control_host)
    codeflow = sim.run_process(control.create_codeflow(sandbox))
    hook_addr = sandbox.hook_table.slot_addr("ingress")
    windows: list[float] = []

    def one_trial(trial: int) -> Generator:
        new_value = 0x1000_0000 + trial
        # Ensure the CPU has the line cached (and therefore stale-able).
        sandbox.hook_table.read_pointer("ingress")

        landed = {"t": None}

        def injector() -> Generator:
            if use_rdx:
                yield from codeflow.sync.tx(
                    obj_addr=hook_addr,
                    obj_bytes=b"",
                    qword_addr=hook_addr,
                    new_qword=new_value,
                )
                landed["t"] = sim.now
                yield from codeflow.sync.cc_event(hook_addr, 8)
            else:
                yield from codeflow.sync.write(
                    hook_addr, new_value.to_bytes(8, "little")
                )
                landed["t"] = sim.now

        inject_proc = sim.spawn(injector(), name=f"inject{trial}")
        # Poll until the CPU observes the new value.
        while True:
            seen = unpack_qword(target.cache.cpu_read(hook_addr, 8))
            if seen == new_value:
                break
            yield sim.timeout(poll_interval_us)
        yield inject_proc  # ensure the injector finished
        windows.append(sim.now - landed["t"])
        # Reset: flush so the next trial starts from a fresh fill.
        target.cache.flush(hook_addr, 8)

    for trial in range(trials):
        sim.run_process(one_trial(trial))
    return windows
