"""Mesh performance under filter churn (paper §6: "up to 65%").

Paper claim: injecting Wasm filters via RDX improves microservice
performance by up to 65% relative to per-pod agents, under the CPU
interference observed in §2.

Setup: a saturated single-service app receives a steady open-loop
request stream while filters are repeatedly (re)deployed.  The agent
run compiles each filter on the pod's host; the RDX run injects the
cached binary one-sided.  We compare request completion rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.core.control_plane import RdxControlPlane
from repro.core.api import bootstrap_sandbox
from repro.mesh.apps import AppSpec, MicroserviceApp
from repro.mesh.workload import OpenLoopLoad
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_header_filter

PAPER = {
    "improvement_pct_max": 65.0,
    "claim": "Wasm-over-RDX lifts microservice performance by up to 65%",
}


@dataclass
class TabMeshResult:
    agent_completion_s: float
    rdx_completion_s: float

    @property
    def improvement_pct(self) -> float:
        if self.agent_completion_s <= 0:
            return 0.0
        return (self.rdx_completion_s / self.agent_completion_s - 1.0) * 100.0


def run_tab_mesh(
    duration_us: float = 400_000.0,
    rate_per_s: float = 380.0,
    cores: int = 4,
    churn_interval_us: float = 35_000.0,
    filter_padding: int = 4_000,
    n_streams: int = 2,
) -> TabMeshResult:
    """Measure request completion under agent vs RDX filter churn.

    ``n_streams`` models per-pod sidecar density (several pods, each
    with its own Envoy whose config path compiles filters locally).
    """
    agent = _run_one(
        duration_us, rate_per_s, cores, churn_interval_us, filter_padding,
        n_streams, mode="agent",
    )
    rdx = _run_one(
        duration_us, rate_per_s, cores, churn_interval_us, filter_padding,
        n_streams, mode="rdx",
    )
    return TabMeshResult(agent_completion_s=agent, rdx_completion_s=rdx)


def _run_one(
    duration_us: float,
    rate_per_s: float,
    cores: int,
    churn_interval_us: float,
    filter_padding: int,
    n_streams: int,
    mode: str,
) -> float:
    sim = Simulator()
    app = MicroserviceApp(
        sim, AppSpec(n_services=1, cores_per_host=cores, with_agents=True)
    )
    pod = app.pods["svc0"]
    hop_us = cores * 1e6 / 400.0  # saturation near 400 req/s

    if mode == "agent":
        # Envoy's config-update path runs on the main thread and
        # blocks worker-thread progress while filters (re)compile, so
        # the compile work effectively preempts request handling; with
        # several pods per node, several sidecars compile at once.
        from repro.agent.daemon import NodeAgent
        from repro.sandbox.sandbox import Sandbox

        module = make_header_filter(version=2, padding=filter_padding)
        for stream in range(n_streams):
            sandbox = Sandbox(
                pod.host,
                name=f"mesh-pod{stream}.sb",
                hooks=("mgmt",),
                code_bytes=2 * 2**20,
                scratchpad_bytes=1 * 2**20,
            )
            agent = NodeAgent(
                pod.host, sandbox, service=f"agent:mesh-pod{stream}",
                priority=-1,
            )

            def churn(agent: NodeAgent = agent) -> Generator:
                while sim.now < duration_us:
                    yield from agent.inject(module, "mgmt")
                    yield sim.timeout(churn_interval_us)

            sim.spawn(churn(), name=f"agent-churn{stream}")
    else:
        control_host = Host(sim, "rdx.control", cores=8, dram_bytes=32 * 2**20)
        app.fabric.attach(control_host)
        bootstrap_sandbox(pod.proxy.sandbox)
        control = RdxControlPlane(control_host)
        codeflow = sim.run_process(control.create_codeflow(pod.proxy.sandbox))
        # One representative module: validate/compile once on the
        # control plane, then repeat one-sided deploys (the cadence an
        # autoscaling or policy loop produces).
        module = make_header_filter(version=2, padding=filter_padding)

        def churn() -> Generator:
            while sim.now < duration_us:
                yield sim.timeout(churn_interval_us)
                yield from control.inject(
                    codeflow, module, "mgmt", retain_history=False
                )

        sim.spawn(churn(), name="rdx-churn")

    load = OpenLoopLoad(app, rate_per_s=rate_per_s, seed=17, hop_service_us=hop_us)
    stats = sim.run_process(load.run(duration_us))
    in_window = sum(
        1
        for record in stats.records
        if not record.denied
        and not record.crashed
        and record.finished_us <= duration_us
    )
    return in_window / (duration_us / 1e6)
