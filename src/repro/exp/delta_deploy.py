"""Delta-deploy ablation: dirty chunks vs the full-image fast path.

The production redeploy shape is a one-instruction edit to a live
extension.  The delta path (:data:`repro.params.RDX_DELTA_DEPLOY`)
diffs the newly linked image against the target's resident baseline at
MTU-chunk granularity and ships only the dirty spans plus the metadata
descriptor, committing with the same CAS as the full path.  The
ablation arm runs the identical version chain with delta disabled, so
the two arms differ only in bytes moved and write-phase latency.

The scenario is the paper's hotpatch story: an ~8 KB program (818
10-byte JIT'd instructions plus header and CRC = exactly two MTU
chunks), deployed three times -- v1 cold, v2 warm (registers v1's
extent as the baseline), v3 a one-instruction variant.  The v3 deploy
is the measured hotpatch: on the delta arm it diffs against the v1
baseline, where the edited instruction and the image CRC share one
dirty chunk, trimmed to a single cache line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import params
from repro.ebpf.stress import make_stress_program, make_stress_variant
from repro.exp.harness import make_testbed

#: 818 insns -> 8 + 818*10 + 4 = 8192 image bytes: exactly two MTU
#: chunks, the "8 KB program" of the acceptance criteria.
HOTPATCH_INSNS = 818


@dataclass
class ModeResult:
    """Measurements for one ablation arm."""

    delta: bool
    #: The measured v3 one-instruction hotpatch.
    hotpatch_us: float = 0.0
    hotpatch_bytes: int = 0
    hotpatch_chunks: int = 0
    mode_used: str = ""
    base_version: int = 0
    #: Cold v1 deploy, for context.
    deploy_cold_us: float = 0.0
    delta_deploys: int = 0
    delta_fallbacks: int = 0
    exec_r0: int = 0
    sim_time_us: float = 0.0


@dataclass
class DeltaDeployResult:
    insn_size: int
    image_bytes: int = 0
    modes: dict[str, ModeResult] = field(default_factory=dict)

    @property
    def bytes_ratio(self) -> Optional[float]:
        """Full-arm / delta-arm bytes moved (None unless both ran)."""
        fast = self.modes.get("delta")
        slow = self.modes.get("full")
        if fast is None or slow is None or not fast.hotpatch_bytes:
            return None
        return slow.hotpatch_bytes / fast.hotpatch_bytes

    @property
    def latency_ratio(self) -> Optional[float]:
        """Full-arm / delta-arm hotpatch latency (None unless both ran)."""
        fast = self.modes.get("delta")
        slow = self.modes.get("full")
        if fast is None or slow is None or not fast.hotpatch_us:
            return None
        return slow.hotpatch_us / fast.hotpatch_us


def run_delta_deploy(
    insn_size: int = HOTPATCH_INSNS,
    modes: Sequence[str] = ("delta", "full"),
) -> DeltaDeployResult:
    """Run the hotpatch chain for the chosen arms.

    Each arm gets a fresh testbed (clean caches, clean telemetry); the
    module-global :data:`repro.params.RDX_DELTA_DEPLOY` flag is flipped
    per arm and restored afterwards.
    """
    result = DeltaDeployResult(insn_size=insn_size)
    for mode in modes:
        arm = _run_mode(mode == "delta", insn_size)
        result.modes[mode] = arm
        if not result.image_bytes:
            result.image_bytes = 8 + insn_size * 10 + 4
    return result


def _run_mode(delta: bool, insn_size: int) -> ModeResult:
    previous = params.RDX_DELTA_DEPLOY
    params.RDX_DELTA_DEPLOY = delta
    try:
        mode = ModeResult(delta=delta)
        bed = make_testbed(n_hosts=1, with_agents=False)
        v1 = make_stress_program(insn_size, seed=7, name="hotpatch")
        v2 = make_stress_variant(v1, 1)
        v3 = make_stress_variant(v1, 2)

        cold = bed.sim.run_process(
            bed.control.inject(
                bed.codeflow, v1, "ingress", retain_history=False
            )
        )
        bed.sim.run_process(
            bed.control.inject(
                bed.codeflow, v2, "ingress", retain_history=False
            )
        )
        # v3 is the measured hotpatch: by now the v1 extent is the
        # registered baseline, and v3 differs from v1 by one
        # instruction (plus the trailing image CRC).
        patch = bed.sim.run_process(
            bed.control.inject(
                bed.codeflow, v3, "ingress", retain_history=False
            )
        )
        mode.deploy_cold_us = cold.total_us
        mode.hotpatch_us = patch.total_us
        mode.hotpatch_bytes = patch.bytes_moved
        mode.hotpatch_chunks = patch.delta_chunks
        mode.mode_used = patch.mode
        mode.base_version = patch.delta_base_version

        # The data path must decode v3 exactly -- a torn delta would
        # crash or return v2/v1 semantics here.
        result, _ = bed.sandbox.run_hook("ingress", bytes(range(256)))
        mode.exec_r0 = result.r0

        deltas = bed.obs.registry.get("rdx.deploy.delta")
        mode.delta_deploys = int(deltas.value) if deltas is not None else 0
        mode.delta_fallbacks = int(
            sum(
                metric.value
                for metric in bed.obs.registry.series("rdx.delta.fallback")
            )
        )
        mode.sim_time_us = bed.sim.now
        return mode
    finally:
        params.RDX_DELTA_DEPLOY = previous
