"""Deploy fast-path ablation: pipelined WR chains vs serial ops.

The pipelined path (default, :data:`repro.params.RDX_PIPELINED_DEPLOY`)
posts the deploy's image + metadata as one chained WR list behind a
single doorbell with selective signaling, commits with a bare CAS
ordered by the chain completion, serves links out of the layout-
fingerprinted image cache, and overlaps broadcast bubble-lowering
flushes.  The serial ablation is the pre-optimization path: one WR,
one doorbell, one blocked completion per op.

Two headline numbers back the claim that the fast path matters:

* warm single-target deploy latency (compile + link caches hot -- the
  steady-state injection the paper's microsecond story rests on), and
* the 8-target broadcast ``bubble_window_us`` -- the §4 consistency
  window during which every data path buffers requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro import params
from repro.core.broadcast import CodeFlowGroup
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import make_testbed


@dataclass
class ModeResult:
    """Measurements for one ablation arm."""

    pipelined: bool
    deploy_cold_us: float = 0.0
    deploy_warm_us: float = 0.0
    bubble_window_us: float = 0.0
    broadcast_total_us: float = 0.0
    compiles_run: int = 0
    prepare_coalesced: int = 0
    link_cache_hits: int = 0
    link_cache_misses: int = 0
    wrs_per_doorbell_p50: float = 0.0
    sim_time_us: float = 0.0


@dataclass
class DeployPipelineResult:
    insn_size: int
    n_targets: int
    modes: dict[str, ModeResult] = field(default_factory=dict)

    @property
    def deploy_speedup(self) -> Optional[float]:
        """Serial / pipelined warm deploy latency (None unless both ran)."""
        return self._ratio("deploy_warm_us")

    @property
    def window_speedup(self) -> Optional[float]:
        """Serial / pipelined broadcast bubble window (None unless both ran)."""
        return self._ratio("bubble_window_us")

    def _ratio(self, attr: str) -> Optional[float]:
        fast = self.modes.get("pipelined")
        slow = self.modes.get("serial")
        if fast is None or slow is None:
            return None
        denominator = getattr(fast, attr)
        return getattr(slow, attr) / denominator if denominator else None


def run_deploy_pipeline(
    n_targets: int = 8,
    insn_size: int = 1_300,
    modes: Sequence[str] = ("pipelined", "serial"),
) -> DeployPipelineResult:
    """Measure deploy latency + broadcast window for the chosen modes.

    Each mode gets fresh testbeds (clean caches, clean telemetry); the
    module-global :data:`repro.params.RDX_PIPELINED_DEPLOY` flag is
    flipped per arm and restored afterwards.
    """
    result = DeployPipelineResult(insn_size=insn_size, n_targets=n_targets)
    for mode in modes:
        result.modes[mode] = _run_mode(mode == "pipelined", n_targets, insn_size)
    return result


def _run_mode(pipelined: bool, n_targets: int, insn_size: int) -> ModeResult:
    previous = params.RDX_PIPELINED_DEPLOY
    params.RDX_PIPELINED_DEPLOY = pipelined
    try:
        mode = ModeResult(pipelined=pipelined)

        # -- single-target deploy: cold (compile + link) then warm ----
        single = make_testbed(n_hosts=1, with_agents=False)
        program = make_stress_program(insn_size, seed=7, name="pipeline")
        cold = single.sim.run_process(
            single.control.inject(
                single.codeflow, program, "ingress", retain_history=False
            )
        )
        warm = single.sim.run_process(
            single.control.inject(
                single.codeflow, program, "ingress", retain_history=False
            )
        )
        mode.deploy_cold_us = cold.total_us
        mode.deploy_warm_us = warm.total_us

        # -- fleet broadcast: v1 warms every cache, v2 is measured ----
        bed = make_testbed(n_hosts=n_targets, with_agents=False)
        v1 = make_stress_program(insn_size, seed=11, name="fleet")
        v2 = make_stress_program(insn_size, seed=12, name="fleet")
        group = CodeFlowGroup(bed.codeflows)
        bed.sim.run_process(
            group.broadcast([v1] * n_targets, "ingress", verify=False)
        )
        outcome = bed.sim.run_process(
            group.broadcast([v2] * n_targets, "ingress", verify=False)
        )
        mode.bubble_window_us = outcome.bubble_window_us
        mode.broadcast_total_us = outcome.total_us
        mode.compiles_run = bed.control.compiles_run
        mode.prepare_coalesced = bed.control.prepare_coalesced
        mode.link_cache_hits = bed.control.link_cache_hits
        mode.link_cache_misses = bed.control.link_cache_misses
        chain = bed.obs.registry.get("rdx.deploy.wrs_per_doorbell")
        if chain is not None and chain.count:
            mode.wrs_per_doorbell_p50 = chain.percentile(50)
        mode.sim_time_us = bed.sim.now
        return mode
    finally:
        params.RDX_PIPELINED_DEPLOY = previous
