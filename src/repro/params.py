"""Calibrated cost-model constants for the RDX reproduction.

Every latency/throughput constant used by the simulator lives here, with
the paper anchor that justifies it.  The calibration targets are the
*published* observations, not the authors' raw testbed numbers (which we
cannot access):

* §2.2 Obs 1 + Fig 4b -- agent-side verification + JIT is >= 90% of the
  injection path; injection is millisecond-level even for small programs.
* §6 Fig 4a -- RDX injection is 47x (1.3K insns) to 1982x (95K insns)
  faster than the agent baseline.
* §6 Fig 5 -- without sync primitives the RNIC/CPU incoherence window is
  up to ~746 us at low CPKI; RDX's ``rdx_cc_event`` holds it at ~2 us.
* §6 -- agentless eBPF lifts Redis throughput by up to 25.3%; agentless
  Wasm lifts microservice performance by up to 65%.

The testbed modeled is the paper's: 24-core 3.4 GHz Xeon E5-2643,
128 GB DRAM, Mellanox CX-4 (100 GbE RoCE), control plane in-rack.
"""

from __future__ import annotations

import os

# --------------------------------------------------------------------
# Host hardware (paper §6 testbed)
# --------------------------------------------------------------------

#: Cores per server (24-core Xeon E5-2643).
HOST_CORES = 24
#: Core frequency in instructions per microsecond (3.4 GHz, IPC ~= 1).
CPU_INSN_PER_US = 3_400.0
#: DRAM per host, bytes (128 GB).
HOST_DRAM_BYTES = 128 * 2**30
#: Cache line size in bytes.
CACHE_LINE_BYTES = 64
#: Effective number of cache lines competing with a polled hot line.
#: Chosen so that the *median* eviction-driven incoherence window at
#: CPKI=5 lands at ~746 us (Fig 5 left edge):
#: median = ln(2) * LINES * 1000 / (CPKI * CPU_INSN_PER_US).
CACHE_EFFECTIVE_LINES = 18_300

# --------------------------------------------------------------------
# Network + RDMA fabric (CX-4, RoCEv2, in-rack)
# --------------------------------------------------------------------

#: One-way propagation + switching latency inside a rack, us.
NET_BASE_LATENCY_US = 1.0
#: RNIC processing overhead per RDMA work request, us (each side).
RNIC_OP_OVERHEAD_US = 0.25
#: RDMA link bandwidth, bytes per microsecond (100 GbE ~= 12.5 GB/s).
RDMA_BANDWIDTH_BPUS = 12_500.0
#: Latency of an RDMA atomic (CAS / fetch-add), us, round trip.
RDMA_ATOMIC_RTT_US = 2.0
#: Small one-sided WRITE/READ round-trip latency floor, us.
RDMA_SMALL_OP_RTT_US = 2.0
#: Extra per-operation cost of RNIC doorbell + WQE fetch, us.
RDMA_DOORBELL_US = 0.2
#: Time an initiator RNIC waits for an ACK before declaring the target
#: unreachable (RC retransmit budget collapsed into one timeout), us.
RDMA_RETRY_TIMEOUT_US = 12.0

#: Default retry budget for one-sided operations against a flaky or
#: crashed target: attempts, backoff shape, and per-op deadline.
RETRY_MAX_ATTEMPTS = 4
RETRY_BACKOFF_BASE_US = 2.0
RETRY_BACKOFF_MAX_US = 64.0
#: Per-target deadline for one broadcast deploy leg, us.  Generous --
#: a healthy warm deploy is tens of microseconds -- so only a crashed
#: or partitioned target exhausts it.
BROADCAST_TARGET_DEADLINE_US = 50_000.0

#: Lease-based health detection (control-plane survivability layer).
#: Heartbeat = one 8-byte one-sided READ of the sandbox control block.
HEALTH_PROBE_INTERVAL_US = 5_000.0
#: Consecutive heartbeat misses before a target turns SUSPECT / DEAD.
#: One miss is already suspicious -- a healthy in-rack read never
#: misses -- but death needs corroboration (slow link != crash).
HEALTH_SUSPECT_MISSES = 1
HEALTH_DEAD_MISSES = 3

#: Max (tag, arch) entries the control plane's compile cache retains.
#: LRU beyond this: long-lived reconciler loops touch many one-off
#: programs and must not grow the registry without bound.
RDX_REGISTRY_CAP = 128

# --------------------------------------------------------------------
# Pipelined deploy fast path (WR chaining + doorbell batching)
# --------------------------------------------------------------------

#: Send-queue depth the pipelined Sync API keeps in flight: one WR
#: chain posted per doorbell carries at most this many WRs.  Matches a
#: conservative RC SQ depth; real verbs code posts far deeper chains,
#: but a deploy never needs more than a handful of WRs per target.
RDX_SQ_DEPTH = int(os.environ.get("RDX_SQ_DEPTH", "16"))

#: Master switch for the pipelined deploy fast path.  A mutable module
#: global (not a frozen constant) so the ablation bench can flip both
#: modes inside one process; the environment sets only the default.
#: ``RDX_PIPELINED_DEPLOY=0`` falls back to the serial
#: one-WR-per-doorbell path everywhere.
RDX_PIPELINED_DEPLOY = os.environ.get("RDX_PIPELINED_DEPLOY", "1") not in (
    "0", "false", "no",
)

#: Master switch for the delta-deploy fast path: when the linked-image
#: cache certifies an identical (arch, GOT-fingerprint) layout and the
#: superseded image is still resident as a baseline, a redeploy ships
#: only the MTU chunks that changed (trimmed to dirty cache lines) and
#: flips the hook with the usual commit CAS.  A mutable module global
#: like :data:`RDX_PIPELINED_DEPLOY` so the ablation bench can flip
#: both arms inside one process; the environment sets only the default
#: (``RDX_DELTA_DEPLOY=1`` to enable).  Requires the pipelined path.
RDX_DELTA_DEPLOY = os.environ.get("RDX_DELTA_DEPLOY", "0") not in (
    "0", "false", "no", "",
)

#: Break-even threshold for the delta path: a diff dirtying more than
#: this many MTU chunks falls back to the full-image pipelined deploy.
#: One chain of small WRs beats one big write only while the trimmed
#: payload stays well under the image size; past ~half the image the
#: per-WR overhead (RNIC_OP_OVERHEAD_US each side + chain bookkeeping)
#: erases the bytes saved.
RDX_DELTA_MAX_CHUNKS = int(os.environ.get("RDX_DELTA_MAX_CHUNKS", "8"))

#: Master switch for the sim-kernel fast dispatch path: the inlined
#: event loop in :meth:`repro.sim.core.Simulator.run` plus the
#: allocation-trimmed poke/bootstrap events.  A mutable module global
#: like :data:`RDX_PIPELINED_DEPLOY` so ``bench_scale`` can measure
#: both arms in one process; the environment sets only the default
#: (``RDX_SIM_FAST=0`` restores the pre-PR ``step()``-per-event loop).
#: Both arms are semantically identical -- same event ordering, same
#: tie-breaking -- only the constant factor differs.
RDX_SIM_FAST = os.environ.get("RDX_SIM_FAST", "1") not in (
    "0", "false", "no",
)

#: Master switch for tree broadcast: fan deploy legs out through a
#: relay tree (already-updated sandboxes forward the chained WR list
#: to their children) instead of hub-and-spoke from the control plane.
#: A mutable module global like :data:`RDX_PIPELINED_DEPLOY`; the
#: environment sets only the default (``RDX_TREE_BROADCAST=1`` to
#: enable).  Off by default: small groups gain nothing and the flat
#: path is the long-soaked one; ``ShardedGroup`` and the scale bench
#: turn it on.
RDX_TREE_BROADCAST = os.environ.get("RDX_TREE_BROADCAST", "0") not in (
    "0", "false", "no", "",
)

#: Fan-out degree of the broadcast relay tree: the shard's control
#: plane seeds this many roots directly and every updated sandbox
#: relays to at most this many children, giving ~log_d(N) relay
#: levels.  Degree trades per-node relay load (d chains through one
#: RNIC) against tree depth.
RDX_TREE_DEGREE = int(os.environ.get("RDX_TREE_DEGREE", "4"))

#: Number of control-plane shards a :class:`repro.core.shard.ShardedGroup`
#: partitions a codeflow group across (each shard is a full
#: RdxControlPlane with its own epoch, journal, and fenced ownership
#: of its partition).
RDX_BROADCAST_SHARDS = int(os.environ.get("RDX_BROADCAST_SHARDS", "4"))

#: Opt-in for per-target metric labels.  Off (the default), high-
#: cardinality series like ``rdx.broadcast.legs{mode,target}`` and the
#: per-target health counters aggregate their ``target`` label to the
#: owning shard (or ``_all`` when unsharded), keeping the registry
#: bounded at N=1024.  Small runs and label-sensitive tests set
#: ``RDX_OBS_TARGET_LABELS=1`` to get the per-target breakdown back.
#: A mutable module global like :data:`RDX_OBS`.
RDX_OBS_TARGET_LABELS = os.environ.get(
    "RDX_OBS_TARGET_LABELS", "0"
) not in ("0", "false", "no", "")

#: Batched health sweep: ``HealthDetector.probe_all`` posts every
#: heartbeat READ of a shard as one doorbell-batched sweep (no
#: per-probe process, retry ladder, or span) instead of N independent
#: probes.  ``RDX_HEALTH_BATCH_SWEEP=0`` restores per-target probes.
RDX_HEALTH_BATCH_SWEEP = os.environ.get(
    "RDX_HEALTH_BATCH_SWEEP", "1"
) not in ("0", "false", "no")

#: Master switch for happens-before race checking (:mod:`repro.hb`).
#: When on, the RNIC / sync / sandbox layers emit ``hb.*`` trace
#: events and the pytest fixture in ``tests/conftest.py`` runs the
#: race detectors over every simulator's recorded trace at teardown.
#: A mutable module global like :data:`RDX_PIPELINED_DEPLOY` so tests
#: and the ``races`` CLI can flip it inside one process; the
#: environment sets only the default (``RDX_HB_CHECK=1`` to enable).
RDX_HB_CHECK = os.environ.get("RDX_HB_CHECK", "0") not in (
    "0", "false", "no", "",
)

#: Master switch for schedule-fuzz perturbation (:mod:`repro.fuzz`).
#: When on, the RNIC / fabric layers consult the simulator's installed
#: :class:`~repro.fuzz.plan.SchedulePlan` at each stochastic choice
#: point (WR service, completion delivery, message delay) and stretch
#: the schedule accordingly.  A mutable module global like
#: :data:`RDX_HB_CHECK` so the fuzz engine can flip it per iteration;
#: the environment sets only the default (``RDX_FUZZ=1`` to enable).
#: Off, the hooks cost one module-global read per WR.
RDX_FUZZ = os.environ.get("RDX_FUZZ", "0") not in (
    "0", "false", "no", "",
)

#: Base magnitude for fuzz-injected WR service/completion delays, us.
#: Sized to a few RDMA RTTs: enough to push a WR past a sibling QP's
#: whole operation (true service reorder), small enough that deploy
#: deadlines and retry budgets never trip on a perturbed-but-correct
#: schedule.
RDX_FUZZ_WR_DELAY_US = 8.0

#: Base magnitude for fuzz-injected fabric message delays, us.  Spans
#: the gap between the RPC latency floor and the health-probe
#: interval, so message reorder can invert control-message arrivals
#: without manufacturing false lease expiries.
RDX_FUZZ_NET_DELAY_US = 20.0

#: Master switch for the agentless telemetry plane (:mod:`repro.obs`).
#: When on (the default), sandboxes keep a seqlock-guarded telemetry
#: segment up to date from the data path, deploy ops record causal
#: trace events, and the control plane feeds its flight recorder.  A
#: mutable module global like :data:`RDX_PIPELINED_DEPLOY` so the
#: overhead bench can flip both modes inside one process; the
#: environment sets only the default (``RDX_OBS=0`` to disable).
RDX_OBS = os.environ.get("RDX_OBS", "1") not in (
    "0", "false", "no",
)

#: Bounded seqlock retries before a scrape is declared torn (and the
#: snapshot discarded -- torn snapshots are never exported).
RDX_SCRAPE_MAX_RETRIES = 8

#: Backoff between seqlock retry attempts on a torn scrape, us.  Long
#: enough for a mid-flight local writer burst to drain, short enough
#: that retries stay invisible next to the probe interval.
RDX_SCRAPE_RETRY_US = 1.0

#: Control-plane dispatch overhead on the *pipelined* path, us.  The
#: serial path pays :data:`RDX_DISPATCH_US` preparing and polling one
#: WQE per op; chaining prepares the whole WR list once and polls a
#: single signaled completion, so dispatch collapses to roughly the
#: cost of one registry lookup + one WQE-list build.
RDX_DISPATCH_FAST_US = 3.0

#: Linked-image cache lookup/insert bookkeeping on the control plane,
#: us.  One dict probe over a precomputed fingerprint.
RDX_LINK_CACHE_LOOKUP_US = 0.2

#: Max entries the control plane's linked-image cache retains (LRU).
#: Keyed by (code CRC, arch, GOT-layout fingerprint); one entry per
#: distinct target layout, so this bounds memory on heterogeneous
#: fleets.
RDX_LINK_CACHE_CAP = 256

# --------------------------------------------------------------------
# Multi-tenant deploy service (serve/)
# --------------------------------------------------------------------

#: Max entries the warm linked-image pool retains (LRU).  Keyed by
#: (program tag, arch, GOT-layout fingerprint) -- one entry per popular
#: extension per distinct target layout, so this bounds control-plane
#: memory the same way :data:`RDX_LINK_CACHE_CAP` does.
RDX_WARM_POOL_CAP = int(os.environ.get("RDX_WARM_POOL_CAP", "512"))

#: Cold deploys of one (tag, arch, layout) before the pool admits it.
#: 1 = admit on first sight; higher values reserve pool slots for
#: genuinely popular extensions.
RDX_WARM_POOL_ADMIT_DEPLOYS = int(
    os.environ.get("RDX_WARM_POOL_ADMIT_DEPLOYS", "1")
)

#: Warm-pool probe cost on the control plane, us: one index lookup
#: plus re-fingerprinting the entry's relocations against the target's
#: current layout (the certification that makes a hit byte-correct).
RDX_WARM_POOL_LOOKUP_US = 0.3

#: Deploy executors a :class:`repro.serve.DeployService` runs -- the
#: service's concurrency, and the QoS wire width underneath it.
RDX_SERVE_WORKERS = int(os.environ.get("RDX_SERVE_WORKERS", "8"))

#: Default bounded queue depth per priority class.  Arrivals beyond
#: this are shed (counted, never silent) in open-loop mode or block
#: the producer in backpressure mode.
RDX_SERVE_QUEUE_DEPTH = int(os.environ.get("RDX_SERVE_QUEUE_DEPTH", "64"))

#: Admission-time throttle ceiling, us: a deploy whose class or tenant
#: token-bucket deficit exceeds this is shed as ``rate-limited``
#: instead of parking a worker on the wait.
RDX_SERVE_MAX_THROTTLE_US = float(
    os.environ.get("RDX_SERVE_MAX_THROTTLE_US", "50000")
)

#: TCP/gRPC request latency floor for control RPCs (agent path), us.
#: Kernel network stack both sides + protobuf handling.
RPC_BASE_LATENCY_US = 55.0
#: Effective TCP goodput for control RPCs, bytes/us (~10 Gb/s).
RPC_BANDWIDTH_BPUS = 1_250.0

# --------------------------------------------------------------------
# eBPF toolchain costs (agent side, host CPU)
# --------------------------------------------------------------------

#: Bytes per eBPF instruction (fixed 8-byte encoding).
EBPF_INSN_BYTES = 8
#: JIT output bytes per eBPF instruction (x86-64 expansion factor).
JIT_BYTES_PER_INSN = 10

#: Verifier cost per instruction-state visited, us.  Anchors the
#: millisecond-level injection at 1.3K insns (Fig 2a / 4a left edge).
VERIFY_PER_INSN_US = 1.00
#: Verifier superlinearity: path-pruning degrades on larger programs.
#: cost_factor(n) = 1 + VERIFY_SUPERLINEAR_COEF * log2(n / VERIFY_BASE_INSNS)
#:                      ** VERIFY_SUPERLINEAR_EXP     (for n > base)
VERIFY_BASE_INSNS = 1_300
VERIFY_SUPERLINEAR_COEF = 0.123
VERIFY_SUPERLINEAR_EXP = 1.2
#: JIT compile cost per instruction, us.
JIT_PER_INSN_US = 0.25
#: Wasm validation+compile is heavier per unit of logic than eBPF
#: (type-checking a stack machine + cranelift-style codegen).
WASM_COMPILE_FACTOR = 3.0
#: UDF validation/compile cost per expression node, us.
UDF_PER_NODE_US = 2.0

# --------------------------------------------------------------------
# Agent baseline path (per-node daemon)
# --------------------------------------------------------------------

#: Fixed agent overhead per injection: config parse, syscalls, bookkeeping.
#: Kept small so verify+JIT dominate (>=90%, Fig 4b).
AGENT_FIXED_OVERHEAD_US = 120.0
#: Kernel attach / hook-table update cost on the agent path, us.
AGENT_ATTACH_US = 40.0
#: Periodic XState (map) polling cost per poll, us of host CPU.
AGENT_STATE_POLL_US = 450.0
#: Default agent poll interval for extension state, us (10 ms).
AGENT_STATE_POLL_INTERVAL_US = 10_000.0
#: Controller-side config debounce/batching delay before pushing, us.
CONTROLLER_BATCH_DELAY_US = 5_000.0

# --------------------------------------------------------------------
# RDX path (remote control plane + one-sided injection)
# --------------------------------------------------------------------

#: Control-plane dispatch overhead per deploy (registry lookup, WQE
#: preparation, completion polling), us.  Runs on the *control-plane*
#: server, not the target host.
RDX_DISPATCH_US = 17.0
#: Management-stub rendezvous: reading the Meta descriptor + GOT window
#: via one-sided READs amortizes to this fixed cost per deploy, us.
RDX_STUB_RENDEZVOUS_US = 8.0
#: Remote linking (binary rewriting) cost per relocation entry, us.
RDX_LINK_PER_RELOC_US = 0.05
#: rdx_tx commit: CAS visibility flip + ordering fence, us.
RDX_TX_COMMIT_US = 2.0
#: rdx_cc_event: posting the cache-flush descriptor + local flush, us.
RDX_CC_EVENT_US = 2.0
#: Control-plane validation/JIT run on dedicated control servers and are
#: cached ("validate once, deploy anywhere", §3.2); this factor scales
#: their *control-plane* cost relative to the agent's host-CPU cost.
RDX_CONTROL_COMPILE_FACTOR = 1.0

# --------------------------------------------------------------------
# Data-path application models
# --------------------------------------------------------------------

#: Redis-like KV op service time on one core, us.
REDIS_OP_SERVICE_US = 2.2
#: Microservice per-hop request handling cost, us.
MESH_HOP_SERVICE_US = 120.0
#: Sidecar filter-chain overhead per request per filter, us.
MESH_FILTER_OVERHEAD_US = 6.0
#: Serverless warm-pool pod spin-up floor (excluding filter reload), us.
SERVERLESS_POD_SPAWN_US = 120.0

# --------------------------------------------------------------------
# Memory layout defaults
# --------------------------------------------------------------------

#: Size of the XState scratchpad reserved at ctx_register time, bytes.
XSTATE_SCRATCHPAD_BYTES = 4 * 2**20
#: Number of slots in the top-level "Meta" XState index array.
XSTATE_META_SLOTS = 4_096
#: Bytes per Meta-XState index entry (one qword address).
XSTATE_META_ENTRY_BYTES = 8
#: XState header bytes: type tag (4) + size (4) + version (4) + pad (4).
XSTATE_HEADER_BYTES = 16
#: Sandbox code-page region size, bytes.
SANDBOX_CODE_BYTES = 8 * 2**20
#: Number of hook-point slots in a sandbox hook table.
SANDBOX_HOOK_SLOTS = 64


def verify_cost_us(n_insns: int) -> float:
    """Host-CPU verification cost for an ``n_insns`` eBPF program.

    Linear with a mild superlinear correction above the 1.3K-insn
    anchor, reflecting verifier state-pruning degradation on large
    programs (this is what stretches the speedup from 47x to ~2000x
    across Fig 4a's size range).
    """
    import math

    if n_insns <= 0:
        return 0.0
    factor = 1.0
    if n_insns > VERIFY_BASE_INSNS:
        factor += VERIFY_SUPERLINEAR_COEF * (
            math.log2(n_insns / VERIFY_BASE_INSNS) ** VERIFY_SUPERLINEAR_EXP
        )
    return VERIFY_PER_INSN_US * n_insns * factor


def jit_cost_us(n_insns: int) -> float:
    """Host-CPU JIT-compilation cost for an ``n_insns`` program."""
    return JIT_PER_INSN_US * max(0, n_insns)


def rdma_transfer_us(n_bytes: int) -> float:
    """Wire time for an ``n_bytes`` one-sided RDMA transfer."""
    if n_bytes < 0:
        raise ValueError("negative transfer size")
    return RDMA_SMALL_OP_RTT_US + n_bytes / RDMA_BANDWIDTH_BPUS


def rpc_transfer_us(n_bytes: int) -> float:
    """Wire + stack time for an ``n_bytes`` control RPC (agent path)."""
    if n_bytes < 0:
        raise ValueError("negative transfer size")
    return RPC_BASE_LATENCY_US + n_bytes / RPC_BANDWIDTH_BPUS
