"""Canonical ``hb.*`` trace events and their emit helpers.

The instrumentation layer is deliberately thin: every event is one
:class:`~repro.sim.trace.TraceEvent` in the simulator's shared
telemetry recorder (:func:`repro.obs.telemetry_of`), so the checker
rides the same plumbing the span tracer and experiments already use.

Event categories and their payloads:

``hb.post``
    A WR handed to the RNIC.  ``qp``, ``node`` (initiator), ``target``
    (remote host), ``kind`` (READ/WRITE/CAS/FADD), ``addr``/``length``
    (remote range), ``wr_id``, ``chain`` (doorbell-batch id or None),
    ``signaled`` -- plus any sync-layer annotations (``epoch``,
    ``label``, ``txn``, ``pub_addr``/``pub_len``).
``hb.land``
    The WR's remote effect took place (last DMA chunk placed, atomic
    executed, read data captured).  Same keys as the post; atomics add
    ``success`` (CAS took) and ``value`` (qword now in DRAM); 8-byte
    writes and reads add ``value`` too so reads-from edges can be
    recovered.
``hb.comp``
    A *signaled* completion was delivered to the initiator.  Chains
    retire under one CQE (``chained`` counts the batch) -- unsignaled
    WRs never produce an ``hb.comp``, which is exactly why they cannot
    act as ordering points.
``hb.flush.post`` / ``hb.flush``
    ``rdx_cc_event``: the fire-and-forget doorbell going out, and the
    remote cache-line flush actually taking effect ~2us later.  The
    effect carries ``waited=True`` when the initiator blocked on the
    cc CQE (the blocking ``RemoteSync.cc_event``); only waited flushes
    act as QP ordering points in the graph -- the broadcast's deferred
    bubble flush omits the flag and orders nothing.
``hb.lock``
    ``rdx_mutual_excl`` transitions: ``op`` is ``acquire``/``release``,
    ``addr`` the lock word, ``token`` the owner.
``hb.handoff``
    A tree-broadcast relay handoff: the control plane ships a chained
    WR list (or lowering command) to an already-updated sandbox for
    forwarding.  ``from_qp`` is the initiator QP whose polled
    completions the command is program-ordered behind; ``qp`` is the
    relay QP that will carry the forwarded ops.  The wire message is
    a real happens-before edge -- the relay cannot post bytes it has
    not received -- which is what orders a relayed lower after the
    control plane's raise without sharing a send queue.
``hb.exec``
    The target CPU executed a hook: ``hook_addr`` the slot qword it
    read, ``pointer`` the code address it observed through the cache,
    ``addr``/``length`` the code range it then decoded and ran.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro import params
from repro.obs import telemetry_of
from repro.sim.trace import TraceEvent, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.rdma.qp import QueuePair, WorkRequest
    from repro.sim.core import Simulator

#: Doorbell-batch ids (one per post_send_batch call, process-global).
_chain_ids = itertools.count(1)
#: Transaction ids tying body writes to their commit CAS.
_txn_ids = itertools.count(1)

#: Simulators that emitted hb events and have not been checked yet.
#: Keyed by id() so identity (not equality) dedups; insertion-ordered
#: so the pytest fixture reports findings deterministically.
_active: "dict[int, Simulator]" = {}


def enabled() -> bool:
    """Whether hb instrumentation is on (one module-global read)."""
    return params.RDX_HB_CHECK


def active_sims() -> "list[Simulator]":
    """Simulators with unchecked hb events, oldest first."""
    return list(_active.values())


def forget(sim: "Simulator") -> None:
    """Drop ``sim`` from the active registry (after checking it)."""
    _active.pop(id(sim), None)


def reset() -> None:
    """Clear the active registry (test isolation)."""
    _active.clear()


def new_chain_id() -> int:
    return next(_chain_ids)


def txn_note(
    publishes: Optional[tuple[int, int]] = None, txn: Optional[int] = None
) -> dict:
    """An annotation dict tying deploy-body writes to their commit.

    ``publishes`` marks the commit op itself: the ``(addr, length)``
    range the flipped pointer makes reachable.  The same ``txn`` id on
    the body writes lets the commit-before-body detector enumerate
    exactly the writes the commit must be ordered after -- explicit
    tagging instead of pointer-value inference, so reused code pages
    from unrelated deploys never alias into the transaction.
    """
    note: dict = {"txn": txn if txn is not None else next(_txn_ids)}
    if publishes is not None:
        note["pub_addr"], note["pub_len"] = publishes
    return note


def emit(sim: "Simulator", category: str, **data: Any) -> None:
    """Record one hb event and register ``sim`` for checking."""
    telemetry_of(sim).recorder.record(sim.now, category, **data)
    _active.setdefault(id(sim), sim)


def _wr_payload(
    qp: "QueuePair", wr: "WorkRequest", kind: str, addr: int, length: int
) -> dict:
    remote = qp.remote
    assert remote is not None
    payload = {
        "qp": qp.qpn,
        "node": qp.rnic.host.name,
        "target": remote.rnic.host.name,
        "kind": kind,
        "addr": addr,
        "length": length,
        "wr_id": wr.wr_id,
    }
    if wr.hb:
        payload.update(wr.hb)
    return payload


_KIND_BY_OPCODE = {
    "write": "WRITE",
    "read": "READ",
    "cas": "CAS",
    "fetch_add": "FADD",
    "send": "SEND",
}


def wr_kind(wr: "WorkRequest") -> str:
    return _KIND_BY_OPCODE[wr.opcode.value]


def wr_range(wr: "WorkRequest") -> tuple[int, int]:
    """The remote byte range a WR touches: ``(addr, length)``."""
    from repro.rdma.qp import WrOpcode

    if wr.opcode is WrOpcode.RDMA_WRITE:
        return wr.remote_addr, len(wr.data)
    if wr.opcode is WrOpcode.RDMA_READ:
        return wr.remote_addr, wr.length
    return wr.remote_addr, 8  # atomics touch one qword


def emit_post(
    sim: "Simulator",
    qp: "QueuePair",
    wr: "WorkRequest",
    chain: Optional[int],
    signaled: bool,
) -> None:
    addr, length = wr_range(wr)
    emit(
        sim,
        "hb.post",
        chain=chain,
        signaled=signaled,
        **_wr_payload(qp, wr, wr_kind(wr), addr, length),
    )


def emit_land(
    sim: "Simulator",
    qp: "QueuePair",
    wr: "WorkRequest",
    chain: Optional[int] = None,
    value: Optional[int] = None,
    success: Optional[bool] = None,
) -> None:
    addr, length = wr_range(wr)
    payload = _wr_payload(qp, wr, wr_kind(wr), addr, length)
    payload["chain"] = chain
    if value is not None:
        payload["value"] = value
    if success is not None:
        payload["success"] = success
    emit(sim, "hb.land", **payload)


def emit_comp(
    sim: "Simulator",
    qp: "QueuePair",
    wr_id: int,
    status: str,
    chain: Optional[int] = None,
    chained: int = 1,
) -> None:
    emit(
        sim,
        "hb.comp",
        qp=qp.qpn,
        node=qp.rnic.host.name,
        wr_id=wr_id,
        status=status,
        chain=chain,
        chained=chained,
    )


def emit_handoff(
    sim: "Simulator", from_qp: "QueuePair", to_qp: "QueuePair"
) -> None:
    """The control plane hands a relay its forwarding work."""
    remote = to_qp.remote
    emit(
        sim,
        "hb.handoff",
        qp=to_qp.qpn,
        from_qp=from_qp.qpn,
        node=to_qp.rnic.host.name,
        target=remote.rnic.host.name if remote is not None else None,
    )


@dataclass(frozen=True)
class HbEvent:
    """One parsed hb event, positioned in the recorder's total order.

    ``seq`` is the event's index among the extracted hb events --
    record order, which is nondecreasing simulated time with ties
    broken by emission order.  Every graph edge points from a lower
    seq to a higher one.
    """

    seq: int
    time_us: float
    etype: str  # "post" | "land" | "comp" | "flush_post" | "flush" | "lock" | "exec"
    data: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    @property
    def kind(self) -> Optional[str]:
        return self.data.get("kind")

    @property
    def qp(self) -> Optional[int]:
        return self.data.get("qp")

    @property
    def target(self) -> Optional[str]:
        return self.data.get("target")

    @property
    def addr(self) -> Optional[int]:
        return self.data.get("addr")

    @property
    def length(self) -> int:
        return int(self.data.get("length", 0))

    @property
    def range(self) -> Optional[tuple[int, int]]:
        """Half-open remote byte range, or None for range-less events."""
        addr = self.data.get("addr")
        if addr is None:
            return None
        return addr, addr + self.length

    @property
    def actor(self) -> str:
        """The sequential execution context this event belongs to."""
        if self.etype == "exec":
            return f"cpu:{self.data.get('target')}"
        return f"qp:{self.data.get('qp')}"

    def to_dict(self) -> dict:
        """A JSON-safe rendering (payloads are primitives by design:
        ids, addresses, labels -- nothing object-valued is emitted)."""
        return {
            "seq": self.seq,
            "time_us": self.time_us,
            "etype": self.etype,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HbEvent":
        return cls(
            seq=int(data["seq"]),
            time_us=float(data["time_us"]),
            etype=str(data["etype"]),
            data=dict(data.get("data", {})),
        )

    def describe(self) -> str:
        d = self.data
        bits = [f"#{self.seq}", f"t={self.time_us:.2f}us", f"hb.{self.etype}"]
        if self.etype == "exec":
            bits.append(f"cpu:{d.get('target')}")
            bits.append(f"hook@{d.get('hook_addr', 0):#x}")
        else:
            bits.append(f"qp:{d.get('qp')}")
            if d.get("kind"):
                bits.append(str(d["kind"]))
        if d.get("addr") is not None:
            bits.append(f"[{d['addr']:#x}+{self.length}]")
        for key in ("label", "epoch", "txn", "op", "wr_id", "chain"):
            if d.get(key) is not None:
                bits.append(f"{key}={d[key]}")
        return " ".join(bits)


_ETYPES = {
    "hb.post": "post",
    "hb.land": "land",
    "hb.comp": "comp",
    "hb.flush.post": "flush_post",
    "hb.flush": "flush",
    "hb.lock": "lock",
    "hb.handoff": "handoff",
    "hb.exec": "exec",
}


def extract(source: "TraceRecorder | Iterable[TraceEvent]") -> list[HbEvent]:
    """Pull the hb events out of a recorder (or raw event iterable)."""
    events = source.events if isinstance(source, TraceRecorder) else source
    out: list[HbEvent] = []
    for event in events:
        etype = _ETYPES.get(event.category)
        if etype is not None:
            out.append(HbEvent(len(out), event.time_us, etype, event.data))
    return out
