"""Happens-before race checking for one-sided RDX operations.

RDX's correctness rests on ordering claims about one-sided verbs --
commit CAS after body writes, epoch fence before bubble traffic, flush
before execute -- and none of those claims are visible in a pass/fail
test outcome.  This package makes them checkable: the RNIC, sync
layer, and sandbox emit canonical ``hb.*`` events into the existing
:class:`~repro.sim.trace.TraceRecorder`, a graph builder encodes the
verbs ordering model as happens-before edges with vector clocks, and
detectors flag event pairs that touch overlapping remote ranges
without an ordering path between them.

Layers (each its own module):

* :mod:`repro.hb.events` -- event schema, emit helpers, extraction
  from a recorder, and the active-simulator registry the pytest
  fixture drains.
* :mod:`repro.hb.graph` -- the ordering model as edges + vector
  clocks (see DESIGN.md §12 for which edges exist and why).
* :mod:`repro.hb.detect` -- race detectors over the graph.
* :mod:`repro.hb.checker` -- orchestration: check a recorder or a
  simulator, format findings, drive the pytest/CLI entry points.

Everything is gated on :data:`repro.params.RDX_HB_CHECK`; with the
flag off no events are recorded and the hot WR path pays one module
global read per op.
"""

from repro.hb.checker import (
    check_active,
    check_recorder,
    check_sim,
    consume,
    format_findings,
    reset_active,
)
from repro.hb.detect import RaceFinding, detect_races
from repro.hb.events import HbEvent, active_sims, enabled, extract
from repro.hb.graph import HbGraph

__all__ = [
    "HbEvent",
    "HbGraph",
    "RaceFinding",
    "active_sims",
    "check_active",
    "check_recorder",
    "check_sim",
    "consume",
    "detect_races",
    "enabled",
    "extract",
    "format_findings",
    "reset_active",
]
