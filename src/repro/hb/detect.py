"""Race detectors over the happens-before graph.

Four detector families, matching the bug classes PRs 2-4 ship tests
around by hand:

* **unordered-write-write / torn-exec** -- two effects touching
  overlapping remote ranges on one target with no HB path between
  them.  A WRITE racing a WRITE tears whichever object spans the
  range; a WRITE racing an EXEC is a torn install *visible to the
  data path*.  Atomic-vs-atomic pairs are excluded (the RNIC
  serializes qword atomics by construction).
* **bubble-race** -- the WRITE/WRITE case specialized to the bubble
  control word: broadcast raising it while another owner (the
  reconciler's stranded-bubble sweep) lowers it.
* **commit-before-body** -- a commit CAS whose transaction still has
  body writes not HB-before it: the completion-fallacy bug, where a
  posted-but-unconfirmed body chunk is treated as ordered because
  *some* completion came back.
* **stale-epoch-write** -- a mutating effect carrying an epoch tag
  older than a fence CAS that already raised the target's epoch:
  a fenced-out writer whose bytes still landed.

Every finding names the two events, the overlapping range, and the
edge that would have to exist for the schedule to be race-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hb.events import HbEvent
from repro.hb.graph import HbGraph

#: Stop appending findings past this many (a detector gone wrong on a
#: dense trace should not OOM the test run; the count still reports).
MAX_FINDINGS = 200

_ATOMIC_KINDS = ("CAS", "FADD")


@dataclass(frozen=True)
class RaceFinding:
    """One detected race: two events with no ordering between them."""

    kind: str
    target: str
    #: Overlapping half-open byte range ``[lo, hi)`` on the target.
    range: tuple[int, int]
    first: HbEvent
    second: HbEvent
    #: The HB edge whose absence makes this a race.
    missing_edge: str

    def describe(self) -> str:
        lo, hi = self.range
        return (
            f"{self.kind} on {self.target} [{lo:#x}, {hi:#x}):\n"
            f"    first:  {self.first.describe()}\n"
            f"    second: {self.second.describe()}\n"
            f"    missing edge: {self.missing_edge}"
        )

    def to_dict(self) -> dict:
        """JSON-safe rendering: both events, the overlapping range,
        and the missing edge -- everything a replayed schedule file
        needs to say what it reproduces."""
        return {
            "kind": self.kind,
            "target": self.target,
            "range": [self.range[0], self.range[1]],
            "first": self.first.to_dict(),
            "second": self.second.to_dict(),
            "missing_edge": self.missing_edge,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RaceFinding":
        lo, hi = data["range"]
        return cls(
            kind=str(data["kind"]),
            target=str(data["target"]),
            range=(int(lo), int(hi)),
            first=HbEvent.from_dict(data["first"]),
            second=HbEvent.from_dict(data["second"]),
            missing_edge=str(data["missing_edge"]),
        )


def _overlap(
    a: tuple[int, int], b: tuple[int, int]
) -> Optional[tuple[int, int]]:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return (lo, hi) if lo < hi else None


def _effect_range(event: HbEvent) -> Optional[tuple[int, int]]:
    """The range an event *mutates or executes* (None for reads)."""
    if event.etype == "exec":
        return event.range
    if event.etype != "land":
        return None
    kind = event.kind
    if kind == "WRITE":
        return event.range if event.length else None
    if kind in _ATOMIC_KINDS:
        # A failed CAS mutates nothing -- it is a read.
        if kind == "CAS" and not event.get("success", False):
            return None
        return event.range
    return None


def detect_races(
    graph: HbGraph, check_unflushed_exec: bool = False
) -> list[RaceFinding]:
    """Run every detector; findings come back in trace order."""
    findings: list[RaceFinding] = []
    _detect_overlap_races(graph, findings)
    _detect_commit_before_body(graph, findings)
    _detect_stale_epoch_writers(graph, findings)
    if check_unflushed_exec:
        _detect_unflushed_exec(graph, findings)
    findings.sort(key=lambda f: (f.first.seq, f.second.seq))
    return findings


# -- WRITE/WRITE and WRITE/EXEC overlap ------------------------------------


def _detect_overlap_races(
    graph: HbGraph, findings: list[RaceFinding]
) -> None:
    by_target: dict[str, list[tuple[tuple[int, int], HbEvent]]] = {}
    for event in graph.events:
        span = _effect_range(event)
        if span is None or event.target is None:
            continue
        by_target.setdefault(event.target, []).append((span, event))

    for target, effects in by_target.items():
        effects.sort(key=lambda item: (item[0][0], item[1].seq))
        # Interval sweep: compare each effect against the still-open
        # intervals that start no later than it does.
        active: list[tuple[tuple[int, int], HbEvent]] = []
        for span, event in effects:
            active = [item for item in active if item[0][1] > span[0]]
            for other_span, other in active:
                if len(findings) >= MAX_FINDINGS:
                    return
                if other.actor == event.actor:
                    continue  # same SQ / same CPU: FIFO-ordered
                overlap = _overlap(span, other_span)
                if overlap is None:
                    continue
                classified = _classify_pair(other, event)
                if classified is None:
                    continue
                if not graph.concurrent(other, event):
                    continue
                race_kind, missing = classified
                first, second = (
                    (other, event) if other.seq < event.seq else (event, other)
                )
                findings.append(
                    RaceFinding(
                        kind=race_kind,
                        target=target,
                        range=overlap,
                        first=first,
                        second=second,
                        missing_edge=missing,
                    )
                )
            active.append((span, event))


def _classify_pair(a: HbEvent, b: HbEvent) -> Optional[tuple[str, str]]:
    """(finding kind, missing edge text) for a racing pair, or None."""
    a_exec = a.etype == "exec"
    b_exec = b.etype == "exec"
    if a_exec and b_exec:
        return None  # two executions race on nothing
    a_atomic = a.kind in _ATOMIC_KINDS
    b_atomic = b.kind in _ATOMIC_KINDS
    if a_atomic and b_atomic:
        return None  # the RNIC serializes qword atomics
    if a.get("label") == "doorbell" and b.get("label") == "doorbell":
        # The cc_event doorbell is a value-independent kick: any
        # interleaving of kicks flushes the line, so concurrent
        # doorbells from two owners are commutative by design.
        return None
    if a_exec or b_exec:
        return (
            "torn-exec",
            "writer completion (or flush) -> execute: the data path can "
            "decode a partially landed image",
        )
    if a.get("label") == "bubble" or b.get("label") == "bubble":
        return (
            "bubble-race",
            "bubble owners must be serialized by an epoch fence or lock "
            "edge; concurrent raise/lower leaves the flag in either state",
        )
    return (
        "unordered-write-write",
        "one writer's signaled completion -> the other's post "
        "(same-QP FIFO, a lock edge, or an epoch fence would also do)",
    )


# -- commit-before-body ----------------------------------------------------


def _detect_commit_before_body(
    graph: HbGraph, findings: list[RaceFinding]
) -> None:
    writes_by_txn: dict[int, list[HbEvent]] = {}
    commits: list[HbEvent] = []
    for event in graph.events:
        if event.etype != "land":
            continue
        txn = event.get("txn")
        if txn is None:
            continue
        if event.kind == "WRITE":
            writes_by_txn.setdefault(txn, []).append(event)
        elif event.kind == "CAS" and event.get("pub_addr") is not None:
            commits.append(event)
    for commit in commits:
        for write in writes_by_txn.get(commit.get("txn"), ()):
            if graph.happens_before(write, commit):
                continue
            if len(findings) >= MAX_FINDINGS:
                return
            span = write.range or (0, 0)
            findings.append(
                RaceFinding(
                    kind="commit-before-body",
                    target=str(commit.target),
                    range=span,
                    first=write,
                    second=commit,
                    missing_edge=(
                        "body write land -> commit CAS: the commit must be "
                        "HB-after every chunk it publishes (a completion on "
                        "another QP is not that edge -- the completion "
                        "fallacy)"
                    ),
                )
            )


# -- stale-epoch writers ---------------------------------------------------


def _detect_stale_epoch_writers(
    graph: HbGraph, findings: list[RaceFinding]
) -> None:
    raises: dict[str, list[HbEvent]] = {}
    for event in graph.events:
        if (
            event.etype == "land"
            and event.kind == "CAS"
            and event.get("label") == "epoch"
            and event.get("success")
        ):
            raises.setdefault(str(event.target), []).append(event)
    if not raises:
        return
    for event in graph.events:
        span = _effect_range(event)
        if span is None or event.etype != "land":
            continue
        tag = event.get("epoch")
        if tag is None or event.get("label") == "epoch":
            continue
        for fence in raises.get(str(event.target), ()):
            new_epoch = fence.get("value")
            if new_epoch is None or tag >= new_epoch:
                continue
            if event.actor == fence.actor:
                # The fence's own QP: the owner raising its own epoch
                # can still have old-tagged ops in flight (a spawned
                # doorbell) -- SQ FIFO orders them, not a violation.
                continue
            if fence.seq < event.seq:
                if len(findings) >= MAX_FINDINGS:
                    return
                findings.append(
                    RaceFinding(
                        kind="stale-epoch-write",
                        target=str(event.target),
                        range=span,
                        first=fence,
                        second=event,
                        missing_edge=(
                            f"epoch-{tag} writer -> fence CAS raising to "
                            f"{new_epoch}: bytes from a fenced-out owner "
                            "landed after the fence (check_fence was "
                            "skipped or raced)"
                        ),
                    )
                )
                break


# -- unflushed exec (opt-in) ----------------------------------------------


def _detect_unflushed_exec(
    graph: HbGraph, findings: list[RaceFinding]
) -> None:
    """An exec that observed an RDMA-installed pointer with no flush
    HB-before it: the CPU's view depended on a cache eviction, not an
    ordering edge.  Off by default -- the Fig 5 incoherence window is
    *tolerated* (not racy) for arms that choose eventual visibility.
    """
    for event in graph.events:
        if event.etype != "exec":
            continue
        clock = graph.clocks[event.seq]
        installer_seen = any(
            actor.startswith("qp:") for actor in clock if actor != event.actor
        )
        if not installer_seen:
            continue
        flushed = False
        for other in graph.events:
            if other.etype == "flush" and other.target == event.target:
                span = other.range
                hook = event.get("hook_addr")
                if (
                    span is not None
                    and hook is not None
                    and span[0] <= hook < span[1]
                    and graph.happens_before(other, event)
                ):
                    flushed = True
                    break
        if not flushed:
            if len(findings) >= MAX_FINDINGS:
                return
            findings.append(
                RaceFinding(
                    kind="unflushed-exec",
                    target=str(event.target),
                    range=event.range or (0, 0),
                    first=event,
                    second=event,
                    missing_edge=(
                        "rdx_cc_event flush -> execute: without it the "
                        "observed pointer rode a cache eviction, not an "
                        "ordering edge (completion-fallacy territory)"
                    ),
                )
            )
