"""Checker entry points: run the detectors over recorded traces.

Three consumers share these helpers:

* the pytest fixture in ``tests/conftest.py`` (``RDX_HB_CHECK=1``)
  drains every simulator that emitted hb events during a test and
  fails the test on findings;
* ``python -m repro.cli races`` replays the fault campaign and the
  known-bad schedules with checking on;
* :mod:`repro.exp.hb_schedules` asserts the detectors actually fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.hb import events as hb_events
from repro.hb.detect import RaceFinding, detect_races
from repro.hb.events import extract
from repro.hb.graph import HbGraph
from repro.obs import telemetry_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.trace import TraceRecorder


@dataclass
class CheckReport:
    """Outcome of one checker run over one trace."""

    findings: list[RaceFinding] = field(default_factory=list)
    events: int = 0
    #: True when the recorder's ring buffer evicted events: the graph
    #: would be missing edges (eviction drops *oldest* first, i.e.
    #: exactly the ordering sources), so no verdict is sound and the
    #: trace is reported as unchecked rather than clean.
    truncated: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings and not self.truncated


def check_recorder(
    recorder: "TraceRecorder", check_unflushed_exec: bool = False
) -> CheckReport:
    """Build the HB graph from a recorder's hb events and detect."""
    report = CheckReport(truncated=recorder.dropped > 0)
    hb = extract(recorder)
    report.events = len(hb)
    if report.truncated or not hb:
        return report
    graph = HbGraph(hb)
    report.findings = detect_races(
        graph, check_unflushed_exec=check_unflushed_exec
    )
    return report


def check_sim(
    sim: "Simulator", check_unflushed_exec: bool = False
) -> CheckReport:
    return check_recorder(
        telemetry_of(sim).recorder,
        check_unflushed_exec=check_unflushed_exec,
    )


def consume(sim: "Simulator") -> CheckReport:
    """Check one simulator and drop it from the active registry.

    Known-race tests use this to collect their expected findings so
    the teardown fixture does not re-flag them.
    """
    report = check_sim(sim)
    hb_events.forget(sim)
    return report


def check_active() -> "list[tuple[Simulator, CheckReport]]":
    """Check every registered simulator, in registration order."""
    return [(sim, check_sim(sim)) for sim in hb_events.active_sims()]


def reset_active() -> None:
    hb_events.reset()


def format_findings(
    findings: list[RaceFinding], limit: Optional[int] = 20
) -> str:
    if not findings:
        return "no races found"
    shown = findings if limit is None else findings[:limit]
    lines = [f"{len(findings)} race finding(s):"]
    for i, finding in enumerate(shown, 1):
        lines.append(f"[{i}] {finding.describe()}")
    if len(shown) < len(findings):
        lines.append(f"... and {len(findings) - len(shown)} more")
    return "\n".join(lines)
