"""The RDMA verbs ordering model as a happens-before graph.

Edges encoded (each a claim about what *actually* orders one-sided
ops -- see DESIGN.md §12 for the full rationale):

* **post -> land** -- an effect follows its own posting.
* **per-QP SQ FIFO** -- effects on one RC QP land in submission
  order (land_i -> land_{i+1} on the same QP).  This covers chain
  order within a doorbell batch too: chained WRs are consecutive
  entries in the same send queue.
* **land(s) -> signaled completion** -- a CQE retires every WR it
  covers.  Only *signaled* completions exist as events: an unsignaled
  WR produces no ``hb.comp`` and therefore can never act as an
  ordering point (the instrumentation-gap fix in PR 5).
* **completion -> subsequent post (same QP)** -- the initiator-side
  ordering discipline: once it polled a CQE, everything it posts
  afterwards on that QP is ordered behind the completed op.  This is
  the *only* cross-time edge a completion buys; crucially it says
  nothing about remote CPU visibility (the completion fallacy).
* **flush post -> flush effect**, and **flush -> exec** for the
  latest flush covering the hook word an exec read: the exec observed
  post-flush bytes.
* **exec -> subsequent flush effect (same target)** -- the flush
  executes on the target's cache agent, serialized with the core, so
  an exec that retired before the flush effect is target-local-order
  before it.  This is what gives a delta deploy its grace period: old
  executions of the baseline extent are ordered before the successor's
  commit flush, hence before delta chunks posted after it.
* **waited flush effect -> subsequent post (same QP)** -- ONLY for
  flushes whose initiator blocked on the cc CQE (``waited=True``,
  emitted by the blocking ``RemoteSync.cc_event``): anything posted on
  that QP afterwards is causally behind the flush effect.  The
  broadcast's fire-and-forget bubble flush carries no ``waited`` flag
  and never becomes an ordering point.
* **reads-from: installer -> exec** -- the WRITE/CAS land that put
  the observed pointer value into the hook qword happens before the
  exec that read it.
* **lock release -> next acquire** on the same lock word
  (``rdx_mutual_excl``), with acquire/release acting as ordering
  points on their QP.
* **relay handoff** -- a tree-broadcast relay command is a wire
  message from the control plane to the forwarding sandbox: the
  handoff joins the *sender* QP's latest ordering point (the polled
  completions the command is program-ordered behind) and becomes the
  relay QP's ordering point, so everything the relay posts afterwards
  is causally behind whatever the control plane had confirmed before
  shipping the command (e.g. the bubble raise a relayed lower must
  follow).
* **epoch fence** -- a successful CAS raising the target's epoch word
  to E is ordered after every event tagged with an older epoch that
  already landed: the fence is the point where the old owner's story
  ends and the new owner's begins.

Vector clocks are computed in one pass: events arrive in recorder
order and every edge points backwards in that order, so each event's
clock is the join of its predecessors' clocks plus its own
(actor, index) component.
"""

from __future__ import annotations

from typing import Optional

from repro.hb.events import HbEvent


def _join(vc: dict, other: dict) -> None:
    for actor, index in other.items():
        if vc.get(actor, 0) < index:
            vc[actor] = index


class HbGraph:
    """Happens-before relation over a list of :class:`HbEvent`."""

    def __init__(self, events: list[HbEvent]):
        self.events = events
        #: Per-event vector clocks: ``clock[seq][actor] -> index``.
        self.clocks: list[dict[str, int]] = []
        #: Per-event (actor, index) identity used by ordering queries.
        self.index: list[int] = []
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        next_index: dict[str, int] = {}
        # The latest ordering point per QP (signaled comp / lock /
        # fence read) -- what a subsequent post is ordered after.
        ordering_point: dict[int, HbEvent] = {}
        posts: dict[int, HbEvent] = {}  # wr_id -> post
        lands: dict[int, HbEvent] = {}  # wr_id -> land
        last_land: dict[int, HbEvent] = {}  # qp -> latest land (SQ FIFO)
        flush_posts: dict[tuple[int, int], HbEvent] = {}  # (qp, addr) -> post
        flushes: dict[str, dict[tuple[int, int], HbEvent]] = {}  # target
        last_release: dict[tuple[str, int], HbEvent] = {}
        last_exec: dict[str, HbEvent] = {}  # target -> latest exec
        # (target, addr) -> {qword value -> installing land}
        installers: dict[tuple[str, int], dict[int, HbEvent]] = {}
        # target -> {epoch tag -> joined clock of tagged events}
        frontier: dict[str, dict[Optional[int], dict[str, int]]] = {}

        for event in self.events:
            preds: list[HbEvent] = []
            extra_clock: Optional[dict[str, int]] = None
            etype = event.etype
            qp = event.qp

            if etype == "post":
                point = ordering_point.get(qp)
                if point is not None:
                    preds.append(point)
                wr_id = event.data.get("wr_id")
                if wr_id is not None:
                    posts[wr_id] = event

            elif etype == "land":
                wr_id = event.data.get("wr_id")
                post = posts.get(wr_id)
                if post is not None:
                    preds.append(post)
                else:
                    # Synthetic traces may omit posts; the effect is
                    # still ordered behind the QP's ordering point.
                    point = ordering_point.get(qp)
                    if point is not None:
                        preds.append(point)
                prev = last_land.get(qp)
                if prev is not None:
                    preds.append(prev)
                last_land[qp] = event
                if wr_id is not None:
                    lands[wr_id] = event
                extra_clock = self._land_bookkeeping(
                    event, installers, frontier
                )

            elif etype == "comp":
                wr_id = event.data.get("wr_id")
                source = lands.get(wr_id) or posts.get(wr_id)
                if source is not None:
                    preds.append(source)
                ordering_point[qp] = event

            elif etype == "flush_post":
                point = ordering_point.get(qp)
                if point is not None:
                    preds.append(point)
                flush_posts[(qp, event.data["addr"])] = event

            elif etype == "flush":
                post = flush_posts.get((qp, event.data["addr"]))
                if post is not None:
                    preds.append(post)
                target = event.data.get("target")
                # The flush effect runs on the target's cache agent,
                # serialized with the core: the latest retired exec on
                # that target is local-order before it.
                exec_pred = last_exec.get(target)
                if exec_pred is not None:
                    preds.append(exec_pred)
                flushes.setdefault(target, {})[
                    (event.data["addr"], event.length)
                ] = event
                # Only a flush the initiator *blocked on* orders its
                # later posts (the fire-and-forget bubble flush lands
                # whenever it lands -- no waited flag, no edge).
                if event.data.get("waited"):
                    ordering_point[qp] = event

            elif etype == "handoff":
                # The relay command is ordered behind the sender QP's
                # latest ordering point, and everything the relay QP
                # posts afterwards is ordered behind the command.
                point = ordering_point.get(event.data.get("from_qp"))
                if point is not None:
                    preds.append(point)
                ordering_point[qp] = event

            elif etype == "lock":
                point = ordering_point.get(qp)
                if point is not None:
                    preds.append(point)
                key = (event.data.get("target"), event.data["addr"])
                if event.data.get("op") == "acquire":
                    release = last_release.get(key)
                    if release is not None:
                        preds.append(release)
                else:
                    last_release[key] = event
                ordering_point[qp] = event

            elif etype == "exec":
                target = event.data.get("target")
                hook_addr = event.data.get("hook_addr")
                pointer = event.data.get("pointer")
                if hook_addr is not None:
                    by_value = installers.get((target, hook_addr))
                    if by_value and pointer in by_value:
                        preds.append(by_value[pointer])
                    flush = self._covering_flush(
                        flushes.get(target), hook_addr
                    )
                    if flush is not None:
                        preds.append(flush)
                if target is not None:
                    last_exec[target] = event

            actor = event.actor
            index = next_index.get(actor, 0) + 1
            next_index[actor] = index
            clock: dict[str, int] = {}
            for pred in preds:
                _join(clock, self.clocks[pred.seq])
            if extra_clock is not None:
                _join(clock, extra_clock)
            clock[actor] = index
            self.clocks.append(clock)
            self.index.append(index)
            if etype == "land":
                self._feed_frontier(event, clock, frontier)

    def _land_bookkeeping(
        self,
        event: HbEvent,
        installers: dict,
        frontier: dict,
    ) -> Optional[dict[str, int]]:
        """Track qword installs; return the epoch-fence join, if any."""
        data = event.data
        target = data.get("target")
        kind = data.get("kind")
        addr = data.get("addr")
        value = data.get("value")
        if value is not None and addr is not None:
            if kind == "WRITE" and event.length == 8:
                installers.setdefault((target, addr), {})[value] = event
            elif kind in ("CAS", "FADD") and data.get("success", True):
                installers.setdefault((target, addr), {})[value] = event
        # A successful CAS raising the epoch word is the fence: join
        # the clocks of everything the old owner(s) already landed.
        if (
            kind == "CAS"
            and data.get("label") == "epoch"
            and data.get("success")
        ):
            new_epoch = data.get("value")
            joined: dict[str, int] = {}
            for tag, tag_clock in frontier.get(target, {}).items():
                if tag is None or (new_epoch is not None and tag < new_epoch):
                    _join(joined, tag_clock)
            return joined or None
        return None

    @staticmethod
    def _feed_frontier(event: HbEvent, clock: dict, frontier: dict) -> None:
        target = event.data.get("target")
        if target is None:
            return
        tag = event.data.get("epoch")
        tag_clock = frontier.setdefault(target, {}).setdefault(tag, {})
        _join(tag_clock, clock)

    @staticmethod
    def _covering_flush(
        by_range: Optional[dict], addr: int
    ) -> Optional[HbEvent]:
        if not by_range:
            return None
        best: Optional[HbEvent] = None
        for (lo, length), flush in by_range.items():
            if lo <= addr < lo + max(length, 1):
                if best is None or flush.seq > best.seq:
                    best = flush
        return best

    # -- queries -----------------------------------------------------------

    def happens_before(self, a: HbEvent, b: HbEvent) -> bool:
        """Whether ``a`` happens before (or is) ``b``."""
        if a.seq == b.seq:
            return True
        return self.clocks[b.seq].get(a.actor, 0) >= self.index[a.seq]

    def concurrent(self, a: HbEvent, b: HbEvent) -> bool:
        return not self.happens_before(a, b) and not self.happens_before(b, a)
