"""Remote linking: binary rewriting against the target context (§3.3).

The control plane holds (a) the target's global context -- helper and
global addresses exported at CodeFlow creation -- and (b) the
relocation metadata the JIT emitted.  Linking patches each placeholder
with the target-local address; map symbols resolve to XState data
addresses chosen by the control-plane scratchpad allocator.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import params
from repro.errors import LinkError
from repro.ebpf.jit import JitBinary, Relocation, RelocKind


class RemoteLinker:
    """Links JIT images for one target sandbox."""

    def __init__(
        self,
        helper_addresses: dict[str, int],
        map_address_of: Callable[[str], Optional[int]],
    ):
        self.helper_addresses = dict(helper_addresses)
        self.map_address_of = map_address_of
        self.links_done = 0

    def link(self, binary: JitBinary) -> tuple[JitBinary, float]:
        """Return (linked image, control-plane CPU cost in us)."""

        def resolve(reloc: Relocation) -> int:
            if reloc.kind is RelocKind.HELPER:
                address = self.helper_addresses.get(reloc.symbol)
                if address is None:
                    raise LinkError(
                        f"target exports no helper {reloc.symbol!r}"
                    )
                return address
            if reloc.kind is RelocKind.MAP:
                address = self.map_address_of(reloc.symbol)
                if address is None:
                    raise LinkError(
                        f"no XState deployed for map {reloc.symbol!r} "
                        "(deploy_xstate must precede link)"
                    )
                return address
            raise LinkError(f"unknown relocation kind {reloc.kind}")

        linked = binary.link(resolve)
        self.links_done += 1
        cost_us = params.RDX_LINK_PER_RELOC_US * max(1, len(binary.relocations))
        return linked, cost_us
