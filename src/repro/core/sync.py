"""Remote synchronization primitives (paper §3.5, Table 1).

One-sided injection has three hazards, each owned by one primitive:

* **partial reads** of large objects -> :meth:`RemoteSync.tx` stages
  the full object first, then flips a single qword (the hook pointer)
  with an atomic CAS -- the data path either sees the old object or
  the complete new one;
* **RNIC/CPU cache incoherence** -> :meth:`RemoteSync.cc_event` posts
  a flush descriptor to the sandbox's event hook, dropping the stale
  cache lines within ~2 us instead of waiting for eviction (Fig 5);
* **CPU vs RNIC races** -> :meth:`RemoteSync.lock` /
  :meth:`RemoteSync.unlock` implement a sandbox-level mutex over an
  RDMA CAS word that the local CPU honours through
  :meth:`repro.sandbox.sandbox.Sandbox.cpu_try_lock`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import params
from repro.errors import RdmaError
from repro.rdma.cq import Completion, WcStatus
from repro.rdma.qp import QueuePair, WorkRequest, WrOpcode
from repro.sandbox.sandbox import Sandbox
from repro.sim.core import Simulator


class RemoteSync:
    """Sync-primitive toolkit bound to one (QP, sandbox) pair."""

    def __init__(self, sim: Simulator, qp: QueuePair, rkey: int, sandbox: Sandbox):
        self.sim = sim
        self.qp = qp
        self.rkey = rkey
        self.sandbox = sandbox
        self.tx_count = 0
        self.cc_count = 0
        self.lock_acquires = 0

    # -- raw one-sided ops --------------------------------------------------

    def write(self, addr: int, data: bytes) -> Generator:
        completion = yield self.qp.post_send(
            WorkRequest(
                opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=self.rkey,
                data=data,
            )
        )
        self._check(completion, "WRITE")
        return completion

    def read(self, addr: int, length: int) -> Generator:
        completion = yield self.qp.post_send(
            WorkRequest(
                opcode=WrOpcode.RDMA_READ, remote_addr=addr, rkey=self.rkey,
                length=length,
            )
        )
        self._check(completion, "READ")
        return completion.result

    def cas(self, addr: int, compare: int, swap: int) -> Generator:
        completion = yield self.qp.post_send(
            WorkRequest(
                opcode=WrOpcode.COMP_SWAP, remote_addr=addr, rkey=self.rkey,
                compare=compare, swap_or_add=swap,
            )
        )
        self._check(completion, "CAS")
        return completion.result

    def fetch_add(self, addr: int, delta: int) -> Generator:
        completion = yield self.qp.post_send(
            WorkRequest(
                opcode=WrOpcode.FETCH_ADD, remote_addr=addr, rkey=self.rkey,
                swap_or_add=delta,
            )
        )
        self._check(completion, "FETCH_ADD")
        return completion.result

    @staticmethod
    def _check(completion: Completion, what: str) -> None:
        if completion.status is not WcStatus.SUCCESS:
            raise RdmaError(f"{what} failed: {completion.error}")

    # -- rdx_tx (§3.5 issue 1) -----------------------------------------------

    def tx(
        self,
        obj_addr: int,
        obj_bytes: bytes,
        qword_addr: int,
        new_qword: int,
        expect: Optional[int] = None,
    ) -> Generator:
        """Transactional install: stage the object, then flip one qword.

        The object is fully resident before the qword swap executes
        (RC ordering: the WRITE completion precedes the CAS issue), so
        a concurrent data-path reader can never observe a partial
        object through the new pointer.  Returns the qword's prior
        value.  When ``expect`` is given the flip is a compare-and-swap
        and the transaction *aborts* (returns the observed value
        without swapping) on mismatch.
        """
        if obj_bytes:
            yield from self.write(obj_addr, obj_bytes)
        yield self.sim.timeout(params.RDX_TX_COMMIT_US)
        if expect is not None:
            prior = yield from self.cas(qword_addr, expect, new_qword)
        else:
            prior = yield from self.read(qword_addr, 8)
            prior = int.from_bytes(prior, "little")
            yield from self.write(qword_addr, new_qword.to_bytes(8, "little"))
        self.tx_count += 1
        return prior

    # -- rdx_cc_event (§3.5 issue 2) ------------------------------------------

    def cc_event(self, mem_addr: int, length: int = 64) -> Generator:
        """Remote cache-line flush via the sandbox's event hook.

        Models posting a tiny cache-coherent descriptor that the
        hardware event hook executes: the target lines are clflushed,
        so the next CPU read observes DMA-written bytes.  The doorbell
        WQE is posted fire-and-forget (batched with the preceding
        transaction's WQEs on real hardware); the flush itself takes
        effect ~:data:`repro.params.RDX_CC_EVENT_US` later and costs
        no target CPU time.
        """
        doorbell = self.sandbox.control_addr + 24  # OFF_DOORBELL
        self.sim.spawn(
            self.write(doorbell, (1).to_bytes(8, "little")),
            name="cc-doorbell",
        )
        yield self.sim.timeout(params.RDX_CC_EVENT_US)
        self.sandbox.host.cache.flush(mem_addr, length)
        self.cc_count += 1

    # -- rdx_mutual_excl (§3.5 issue 3) ----------------------------------------

    def lock(
        self, owner_token: int, max_attempts: int = 64, backoff_us: float = 2.0
    ) -> Generator:
        """Acquire the sandbox lock with bounded CAS retries.

        Returns the number of attempts used; raises on exhaustion.
        """
        lock_addr = self.sandbox.lock_addr
        for attempt in range(1, max_attempts + 1):
            prior = yield from self.cas(lock_addr, 0, owner_token)
            if prior == 0:
                self.lock_acquires += 1
                # Make the acquisition visible to the local CPU quickly.
                yield from self.cc_event(lock_addr, 8)
                return attempt
            yield self.sim.timeout(backoff_us * attempt)
        raise RdmaError(
            f"lock on {self.sandbox.name} not acquired after {max_attempts} tries"
        )

    def unlock(self, owner_token: int) -> Generator:
        lock_addr = self.sandbox.lock_addr
        prior = yield from self.cas(lock_addr, owner_token, 0)
        if prior != owner_token:
            raise RdmaError(
                f"unlock of {self.sandbox.name}: lock held by {prior}, "
                f"not {owner_token}"
            )
        yield from self.cc_event(lock_addr, 8)
