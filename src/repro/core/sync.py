"""Remote synchronization primitives (paper §3.5, Table 1).

One-sided injection has three hazards, each owned by one primitive:

* **partial reads** of large objects -> :meth:`RemoteSync.tx` stages
  the full object first, then flips a single qword (the hook pointer)
  with an atomic CAS -- the data path either sees the old object or
  the complete new one;
* **RNIC/CPU cache incoherence** -> :meth:`RemoteSync.cc_event` posts
  a flush descriptor to the sandbox's event hook, dropping the stale
  cache lines within ~2 us instead of waiting for eviction (Fig 5);
* **CPU vs RNIC races** -> :meth:`RemoteSync.lock` /
  :meth:`RemoteSync.unlock` implement a sandbox-level mutex over an
  RDMA CAS word that the local CPU honours through
  :meth:`repro.sandbox.sandbox.Sandbox.cpu_try_lock`.

All raw one-sided ops run under a :class:`~repro.core.retry.RetryPolicy`:
a transient transport failure (flaky link, unACKed WR against a host
that might just be slow) is retried with jittered backoff instead of
killing the caller.  A :attr:`fault_hook` lets the fault injector
(:mod:`repro.core.faults`) corrupt, drop, or fail individual ops
without the sync layer knowing about fault kinds.
"""

from __future__ import annotations

import random
import zlib
from typing import Generator, Optional

from repro import params
from repro.core.retry import RetryPolicy
from repro.errors import RdmaError, TransientFault
from repro.hb import events as hb
from repro.obs import telemetry_of
from repro.rdma.cq import Completion, WcStatus
from repro.rdma.qp import QueuePair, WorkRequest, WrOpcode
from repro.rdma.rnic import RNIC_MTU_BYTES
from repro.sandbox.sandbox import Sandbox
from repro.sim.core import Simulator


class RemoteSync:
    """Sync-primitive toolkit bound to one (QP, sandbox) pair."""

    def __init__(
        self,
        sim: Simulator,
        qp: QueuePair,
        rkey: int,
        sandbox: Sandbox,
        retry: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.qp = qp
        self.rkey = rkey
        self.sandbox = sandbox
        self.retry = retry or RetryPolicy()
        #: Optional fault filter installed by
        #: :meth:`repro.core.faults.FaultInjector.attach`.  Called as
        #: ``hook(op, addr, data)`` before each raw op; returns ``None``
        #: or an action object with ``mangled`` (replacement payload),
        #: ``drop`` (skip the op) and ``error`` (exception to raise)
        #: attributes.
        self.fault_hook = None
        #: Jitter source for retry backoff, decorrelated per target.
        #: Seeded from the sandbox *name* (stable across test orderings,
        #: unlike the module-global sandbox_id counter).
        self._rng = random.Random(zlib.crc32(sandbox.name.encode()))
        self.tx_count = 0
        self.cc_count = 0
        self.lock_acquires = 0
        #: The deployment epoch this sync's ops are issued under; set
        #: by :meth:`repro.core.codeflow.CodeFlow.stamp_epoch` and
        #: carried on every WR as an hb annotation so the race checker
        #: can tell a fenced-out writer's bytes from its successor's.
        self.hb_epoch: Optional[int] = None
        obs = telemetry_of(sim)
        self._obs = obs
        #: Pipelined-path instrumentation (resolved once; hot path).
        self._m_chain_wrs = obs.histogram("rdx.deploy.wrs_per_doorbell")
        self._m_inflight = obs.histogram("rdx.deploy.inflight_depth")
        #: Trace context: while a deploy span is parked here (by
        #: :meth:`repro.core.codeflow.CodeFlow.deploy_prog`), every
        #: chain/land/CAS/flush below emits a causal trace event under
        #: that span's trace id.
        self.trace_span = None

    def _trace_event(self, category: str, **data) -> None:
        span = self.trace_span
        if span is None or not params.RDX_OBS:
            return
        self._obs.recorder.record(
            self.sim.now, category,
            trace_id=span.trace_id, span_id=span.span_id,
            target=self.sandbox.name, **data,
        )

    # -- raw one-sided ops --------------------------------------------------

    def _hb_note(self, addr: int, note: "Optional[dict]" = None):
        """The hb annotation dict for a WR against ``addr`` (or None).

        Classifies control-block words by address (bubble / epoch /
        lock / doorbell) and tags the current epoch, then merges any
        caller-supplied annotation (deploy transaction ids).
        """
        if not params.RDX_HB_CHECK:
            return None
        out: dict = {}
        if self.hb_epoch is not None:
            out["epoch"] = self.hb_epoch
        sandbox = self.sandbox
        if addr == sandbox.bubble_addr:
            out["label"] = "bubble"
        elif addr == sandbox.epoch_addr:
            out["label"] = "epoch"
        elif addr == sandbox.lock_addr:
            out["label"] = "lock"
        elif addr == sandbox.control_addr + 24:  # OFF_DOORBELL
            out["label"] = "doorbell"
        if note:
            out.update(note)
        return out or None

    def _consult_hook(self, op: str, addr: int, data):
        """Apply an armed fault, if any.

        Returns ``(payload, drop, error)``: possibly mangled payload,
        whether to skip the op entirely, and an exception to raise from
        *inside* the first transport attempt (so a one-shot transient
        fault meets the retry policy, exactly like a real flaky link).
        """
        if self.fault_hook is None:
            return data, False, None
        action = self.fault_hook(op, addr, data)
        if action is None:
            return data, False, None
        mangled = getattr(action, "mangled", None)
        if mangled is not None:
            data = mangled
        return (
            data,
            bool(getattr(action, "drop", False)),
            getattr(action, "error", None),
        )

    def _attempt(self, wr_factory, what: str) -> Generator:
        completion = yield self.qp.post_send(wr_factory())
        # ibv_poll_cq discipline: the convenience event mirrors a CQE
        # that also landed in the CQ.  Retire one entry per completed
        # op, or a long-lived codeflow (the serving tier sustains
        # thousands of deploys per QP) overruns the CQ -- a fatal
        # async event -- after ``depth`` operations.
        self.qp.cq.poll()
        self._check(completion, what)
        return completion

    def _faulted_attempt(self, error: BaseException) -> Generator:
        # The op goes out but its ACK never arrives: charge the
        # transport timeout, then surface the injected fault.
        yield self.sim.timeout(params.RDMA_RETRY_TIMEOUT_US)
        raise error

    def _op(self, wr_factory, what: str, inject=None) -> Generator:
        """One raw op under the retry policy (transient faults absorbed).

        ``inject`` makes the *first* attempt fail with that exception;
        retryable injections are then absorbed like any other hiccup.
        """
        state = {"pending": inject}

        def attempt():
            if state["pending"] is not None:
                error, state["pending"] = state["pending"], None
                return self._faulted_attempt(error)
            return self._attempt(wr_factory, what)

        completion = yield from self.retry.run(
            self.sim, attempt, op=what.lower(), rng=self._rng
        )
        return completion

    def write(self, addr: int, data: bytes, note=None) -> Generator:
        payload, dropped, inject = self._consult_hook("write", addr, data)
        if dropped:
            yield self.sim.timeout(params.RDX_CC_EVENT_US)
            return None
        completion = yield from self._op(
            lambda: WorkRequest(
                opcode=WrOpcode.RDMA_WRITE, remote_addr=addr, rkey=self.rkey,
                data=payload, hb=self._hb_note(addr, note),
            ),
            "WRITE",
            inject=inject,
        )
        self._trace_event(
            "rdx.trace.write", addr=addr, length=len(payload),
            chunks=max(1, -(-len(payload) // RNIC_MTU_BYTES)),
        )
        return completion

    def _attempt_batch(self, wrs_factory, what: str) -> Generator:
        completion = yield self.qp.post_send_batch(wrs_factory())
        self.qp.cq.poll()  # retire the chain's single CQE (see _attempt)
        self._check(completion, what)
        return completion

    def _op_batch(self, wrs_factory, what: str, inject=None) -> Generator:
        """One chained batch under the retry policy.

        A failed batch retries *as a whole*: torn prefixes from the
        failed attempt are overwritten when the retry re-lands every
        WR (writes are idempotent), so partial progress never leaks
        into the success path.
        """
        state = {"pending": inject}

        def attempt():
            if state["pending"] is not None:
                error, state["pending"] = state["pending"], None
                return self._faulted_attempt(error)
            return self._attempt_batch(wrs_factory, what)

        completion = yield from self.retry.run(
            self.sim, attempt, op=what.lower(), rng=self._rng
        )
        return completion

    def write_batch(self, ops: "list[tuple[int, bytes]]", note=None) -> Generator:
        """Pipelined multi-write: chained WRs, selective signaling.

        ``ops`` is ``[(addr, payload), ...]``.  Up to
        :data:`repro.params.RDX_SQ_DEPTH` WRs go out per chain (one
        doorbell, one signaled completion); larger batches issue
        multiple chains back to back.  The fault hook is consulted per
        op, exactly as :meth:`write` does -- an armed fault can mangle
        or drop any WR in the batch, and an injected transport error
        fails the whole chain's first attempt (the batch then retries
        as a whole under the RetryPolicy).  A *dropped* WR re-enters
        the retry loop like a transport error: from the initiator it is
        indistinguishable from an unACKed write, so it is charged the
        transport timeout and re-sent (with backoff) until it lands or
        the retry budget runs out -- the batch never reports success
        with a chunk missing.  An empty ``ops`` list is a no-op with
        zero simulated cost (no chain, no doorbell, nothing to charge).
        Returns the last chain's completion.
        """
        pending = list(ops)
        if not pending:
            return None
        completion = None
        depth = max(1, params.RDX_SQ_DEPTH)
        inject = None
        for attempt in range(1, self.retry.max_attempts + 1):
            staged = []
            redo = []
            for addr, data in pending:
                payload, dropped, error = self._consult_hook(
                    "write", addr, data
                )
                if error is not None and inject is None:
                    inject = error
                if dropped:
                    redo.append((addr, data))
                    continue
                staged.append((addr, payload))
            for start in range(0, len(staged), depth):
                window = staged[start : start + depth]
                self._m_chain_wrs.observe(len(window))
                self._m_inflight.observe(len(window))

                def wrs_factory(window=window):
                    return [
                        WorkRequest(
                            opcode=WrOpcode.RDMA_WRITE, remote_addr=addr,
                            rkey=self.rkey, data=payload,
                            hb=self._hb_note(addr, note),
                        )
                        for addr, payload in window
                    ]

                completion = yield from self._op_batch(
                    wrs_factory, "WRITE_BATCH", inject=inject
                )
                self._trace_event(
                    "rdx.trace.chain", wrs=len(window),
                    bytes=sum(len(payload) for _, payload in window),
                )
                inject = None
            if not redo:
                return completion
            # Dropped WRs went out but never ACKed: charge the
            # transport timeout like any lost op, then back off and
            # re-send only the missing writes (writes are idempotent,
            # and the hook is consulted again so one-shot faults heal).
            yield self.sim.timeout(params.RDMA_RETRY_TIMEOUT_US)
            self._obs.counter("rdx.retry.attempts", op="write_batch").inc()
            if attempt == self.retry.max_attempts:
                self._obs.counter(
                    "rdx.retry.exhausted", op="write_batch"
                ).inc()
                raise TransientFault(
                    f"WRITE_BATCH: {len(redo)} WR(s) dropped in-flight "
                    f"after {attempt} attempts"
                )
            delay = self.retry.backoff_us(attempt, self._rng)
            self._obs.histogram("rdx.retry.backoff_us").observe(delay)
            yield self.sim.timeout(delay)
            pending = redo
        return completion

    def read(self, addr: int, length: int) -> Generator:
        _, dropped, inject = self._consult_hook("read", addr, None)
        if dropped:
            # Stale read: the response carries pre-write bytes, modeled
            # as zeros (the allocator hands out zeroed regions).
            yield self.sim.timeout(params.RDX_CC_EVENT_US)
            return bytes(length)
        completion = yield from self._op(
            lambda: WorkRequest(
                opcode=WrOpcode.RDMA_READ, remote_addr=addr, rkey=self.rkey,
                length=length, hb=self._hb_note(addr),
            ),
            "READ",
            inject=inject,
        )
        return completion.result

    def cas(self, addr: int, compare: int, swap: int, note=None) -> Generator:
        _, _, inject = self._consult_hook("cas", addr, None)
        completion = yield from self._op(
            lambda: WorkRequest(
                opcode=WrOpcode.COMP_SWAP, remote_addr=addr, rkey=self.rkey,
                compare=compare, swap_or_add=swap,
                hb=self._hb_note(addr, note),
            ),
            "CAS",
            inject=inject,
        )
        self._trace_event("rdx.trace.cas", addr=addr)
        return completion.result

    def fetch_add(self, addr: int, delta: int) -> Generator:
        completion = yield from self._op(
            lambda: WorkRequest(
                opcode=WrOpcode.FETCH_ADD, remote_addr=addr, rkey=self.rkey,
                swap_or_add=delta, hb=self._hb_note(addr),
            ),
            "FETCH_ADD",
        )
        return completion.result

    @staticmethod
    def _check(completion: Completion, what: str) -> None:
        if completion.status is WcStatus.RETRY_EXC_ERROR:
            raise TransientFault(f"{what} unACKed: {completion.error}")
        if completion.status is not WcStatus.SUCCESS:
            raise RdmaError(f"{what} failed: {completion.error}")

    # -- rdx_tx (§3.5 issue 1) -----------------------------------------------

    def tx(
        self,
        obj_addr: int,
        obj_bytes: bytes,
        qword_addr: int,
        new_qword: int,
        expect: Optional[int] = None,
        note=None,
    ) -> Generator:
        """Transactional install: stage the object, then flip one qword.

        The object is fully resident before the qword swap executes
        (RC ordering: the WRITE completion precedes the CAS issue), so
        a concurrent data-path reader can never observe a partial
        object through the new pointer.  Returns the qword's prior
        value.  When ``expect`` is given the flip is a compare-and-swap
        and the transaction *aborts* (returns the observed value
        without swapping) on mismatch.
        """
        if params.RDX_HB_CHECK and note is None and obj_bytes:
            note = hb.txn_note(publishes=(obj_addr, len(obj_bytes)))
        body_note = None
        if note:
            body_note = {
                k: v for k, v in note.items() if k not in ("pub_addr", "pub_len")
            }
        if obj_bytes:
            yield from self.write(obj_addr, obj_bytes, note=body_note)
        yield self.sim.timeout(params.RDX_TX_COMMIT_US)
        if expect is not None:
            prior = yield from self.cas(qword_addr, expect, new_qword, note=note)
        else:
            prior = yield from self.read(qword_addr, 8)
            prior = int.from_bytes(prior, "little")
            yield from self.write(
                qword_addr, new_qword.to_bytes(8, "little"), note=body_note
            )
        self.tx_count += 1
        return prior

    # -- rdx_cc_event (§3.5 issue 2) ------------------------------------------

    def cc_event(self, mem_addr: int, length: int = 64) -> Generator:
        """Remote cache-line flush via the sandbox's event hook.

        Models posting a tiny cache-coherent descriptor that the
        hardware event hook executes: the target lines are clflushed,
        so the next CPU read observes DMA-written bytes.  The doorbell
        WQE is posted fire-and-forget (batched with the preceding
        transaction's WQEs on real hardware); the flush itself takes
        effect ~:data:`repro.params.RDX_CC_EVENT_US` later and costs
        no target CPU time.
        """
        _, dropped, _inject = self._consult_hook("cc_event", mem_addr, None)
        if dropped:
            # Charge the time, skip the effect (DROPPED_FLUSH fault).
            yield self.sim.timeout(params.RDX_CC_EVENT_US)
            return
        doorbell = self.sandbox.control_addr + 24  # OFF_DOORBELL
        if params.RDX_HB_CHECK:
            hb.emit(
                self.sim, "hb.flush.post",
                qp=self.qp.qpn, node=self.qp.rnic.host.name,
                target=self.sandbox.host.name, addr=mem_addr, length=length,
            )
        self.sim.spawn(
            self.write(doorbell, (1).to_bytes(8, "little")),
            name="cc-doorbell",
        )
        yield self.sim.timeout(params.RDX_CC_EVENT_US)
        self.sandbox.host.cache.flush(mem_addr, length)
        self.cc_count += 1
        self._trace_event("rdx.trace.flush", addr=mem_addr, length=length)
        if params.RDX_HB_CHECK:
            # ``waited=True``: this generator blocks until the flush
            # effect, so anything the caller posts on this QP afterwards
            # is causally behind it -- unlike the fire-and-forget flush
            # in broadcast bubble-lowering, which must NOT become a QP
            # ordering point (see HbGraph._build).
            hb.emit(
                self.sim, "hb.flush",
                qp=self.qp.qpn, node=self.qp.rnic.host.name,
                target=self.sandbox.host.name, addr=mem_addr, length=length,
                waited=True,
            )

    # -- rdx_mutual_excl (§3.5 issue 3) ----------------------------------------

    def lock(
        self, owner_token: int, max_attempts: int = 64, backoff_us: float = 2.0
    ) -> Generator:
        """Acquire the sandbox lock with bounded, jittered CAS retries.

        Backoff grows geometrically and carries seeded jitter derived
        from ``owner_token``, so two contenders never retry in
        lockstep (lockstep contenders each observe the other's token
        every round and can livelock to exhaustion).  Returns the
        number of attempts used; raises on exhaustion.
        """
        lock_addr = self.sandbox.lock_addr
        policy = RetryPolicy(
            max_attempts=max_attempts,
            backoff_base_us=backoff_us,
            backoff_max_us=backoff_us * 16,
            jitter_frac=0.5,
        )
        # Seeded per (token, acquisition): deterministic across runs,
        # decorrelated across contenders.
        rng = random.Random(owner_token * 0x9E3779B1 + self.lock_acquires)
        obs = telemetry_of(self.sim)
        for attempt in range(1, max_attempts + 1):
            prior = yield from self.cas(lock_addr, 0, owner_token)
            if prior == 0:
                self.lock_acquires += 1
                if attempt > 1:
                    obs.counter("rdx.lock.contended_acquires").inc()
                if params.RDX_HB_CHECK:
                    self._emit_lock("acquire", owner_token)
                # Make the acquisition visible to the local CPU quickly.
                yield from self.cc_event(lock_addr, 8)
                return attempt
            yield self.sim.timeout(policy.backoff_us(attempt, rng))
        raise RdmaError(
            f"lock on {self.sandbox.name} not acquired after {max_attempts} tries"
        )

    def unlock(self, owner_token: int) -> Generator:
        lock_addr = self.sandbox.lock_addr
        prior = yield from self.cas(lock_addr, owner_token, 0)
        if prior != owner_token:
            raise RdmaError(
                f"unlock of {self.sandbox.name}: lock held by {prior}, "
                f"not {owner_token}"
            )
        if params.RDX_HB_CHECK:
            self._emit_lock("release", owner_token)
        yield from self.cc_event(lock_addr, 8)

    def _emit_lock(self, op: str, owner_token: int) -> None:
        hb.emit(
            self.sim, "hb.lock",
            qp=self.qp.qpn, node=self.qp.rnic.host.name,
            target=self.sandbox.host.name, addr=self.sandbox.lock_addr,
            op=op, token=owner_token,
        )
