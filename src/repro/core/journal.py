"""The durable intent journal: a WAL for control-plane lifecycle ops.

RDX's agentless design concentrates *all* lifecycle authority in the
remote control plane -- targets hold bytes, not knowledge.  If the
control plane dies, the only copy of "what should be running where"
dies with it.  The journal fixes that: every mutating operation writes
an ``INTEND`` record before touching any target, ``PHASE`` records as
the pipeline advances, and a terminal ``COMMIT`` or ``ABORT``.  A
restarted control plane replays the journal to recover

* the **committed intent** per target (which program owns which hook,
  which XStates exist) -- the goal state the anti-entropy reconciler
  (:mod:`repro.core.reconcile`) converges targets back to;
* **in-flight transactions** -- intents with no terminal record, i.e.
  work the old incarnation may have half-applied before dying; the
  reconciler aborts these and repairs any partial effects;
* the **deployment epoch** lineage, so the new incarnation can claim
  a strictly higher epoch and fence out its stale predecessor.

The journal object itself stands in for replicated durable storage
(etcd / a log on NVM): it deliberately survives the control-plane
*instance*, and :meth:`to_jsonl` / :meth:`from_jsonl` round-trip the
records so real persistence is a serialization away.  Program bodies
are not in the WAL; a side-table **artifact catalog** maps each
program tag to its object, modeling the validated-binary store the
§3.2 registry already implies.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.ebpf.maps import MapType
from repro.errors import ReproError
from repro.core.xstate import XStateSpec


class JournalError(ReproError):
    """Misuse of the intent journal (unknown txn, double terminal)."""


#: Record types, in pipeline order.
REC_EPOCH = "EPOCH"
REC_INTEND = "INTEND"
REC_PHASE = "PHASE"
REC_COMMIT = "COMMIT"
REC_ABORT = "ABORT"
#: Crash flight-recorder snapshot (see :mod:`repro.obs.flight`): not
#: part of any transaction, ignored by intent replay, rendered by
#: ``python -m repro.cli blackbox``.
REC_FLIGHT = "FLIGHT"

_TERMINAL = (REC_COMMIT, REC_ABORT)


@dataclass(frozen=True)
class JournalRecord:
    """One WAL entry.  ``lsn`` is the append-order sequence number."""

    lsn: int
    rec: str  # EPOCH | INTEND | PHASE | COMMIT | ABORT
    txn: str  # "" for EPOCH records
    op: str  # deploy | broadcast | xstate | detach | reconcile | ...
    epoch: int
    detail: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "lsn": self.lsn,
                "rec": self.rec,
                "txn": self.txn,
                "op": self.op,
                "epoch": self.epoch,
                "detail": self.detail,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "JournalRecord":
        raw = json.loads(line)
        return cls(
            lsn=raw["lsn"],
            rec=raw["rec"],
            txn=raw["txn"],
            op=raw["op"],
            epoch=raw["epoch"],
            detail=raw["detail"],
        )


@dataclass
class TargetIntent:
    """The committed goal state for one target."""

    #: hook name -> program tag that must own it (catalog resolves tag).
    hooks: dict = field(default_factory=dict)
    #: program name -> tag, for every intended extension.
    programs: dict = field(default_factory=dict)
    #: xstate name -> geometry dict (XStateSpec fields).
    xstates: dict = field(default_factory=dict)

    def empty(self) -> bool:
        return not (self.hooks or self.programs or self.xstates)

    def spec_of(self, name: str) -> XStateSpec:
        raw = self.xstates[name]
        return XStateSpec(
            name=raw["name"],
            map_type=MapType(raw["map_type"]),
            key_size=raw["key_size"],
            value_size=raw["value_size"],
            max_entries=raw["max_entries"],
        )


@dataclass
class InFlightTxn:
    """An intent with no terminal record: possibly half-applied work."""

    txn: str
    op: str
    epoch: int
    intend: JournalRecord
    phases: list = field(default_factory=list)


class IntentJournal:
    """Append-only WAL plus the program-artifact catalog."""

    def __init__(self):
        self.records: list[JournalRecord] = []
        #: program tag -> program object (the validated-artifact store).
        self.catalog: dict[str, object] = {}
        self._lsn = itertools.count(1)
        self._open: dict[str, JournalRecord] = {}

    def __len__(self) -> int:
        return len(self.records)

    # -- appends ---------------------------------------------------------

    def _append(
        self, rec: str, txn: str, op: str, epoch: int, detail: dict
    ) -> JournalRecord:
        record = JournalRecord(
            lsn=next(self._lsn), rec=rec, txn=txn, op=op, epoch=epoch,
            detail=detail,
        )
        self.records.append(record)
        return record

    def claim_epoch(self) -> int:
        """Claim the next deployment epoch (strictly above every prior).

        Called once per control-plane incarnation; the EPOCH record is
        the incarnation's birth certificate, so even a reader with no
        other context can order incarnations.
        """
        epoch = self.latest_epoch() + 1
        self._append(REC_EPOCH, "", "claim", epoch, {})
        return epoch

    def latest_epoch(self) -> int:
        epoch = 0
        for record in self.records:
            if record.epoch > epoch:
                epoch = record.epoch
        return epoch

    def begin(self, txn: str, op: str, epoch: int, **detail) -> str:
        """Write the INTEND record; must precede any target mutation."""
        if txn in self._open:
            raise JournalError(f"txn {txn} already open")
        record = self._append(REC_INTEND, txn, op, epoch, dict(detail))
        self._open[txn] = record
        return txn

    def phase(self, txn: str, phase: str, **detail) -> None:
        intend = self._require_open(txn)
        detail = dict(detail)
        detail["phase"] = phase
        self._append(REC_PHASE, txn, intend.op, intend.epoch, detail)

    def commit(self, txn: str, **detail) -> None:
        intend = self._open.pop(self._require_open(txn).txn)
        self._append(REC_COMMIT, txn, intend.op, intend.epoch, dict(detail))

    def abort(self, txn: str, reason: str = "", **detail) -> None:
        intend = self._open.pop(self._require_open(txn).txn)
        detail = dict(detail)
        detail["reason"] = reason
        self._append(REC_ABORT, txn, intend.op, intend.epoch, detail)

    def record_flight(self, epoch: int, detail: dict) -> JournalRecord:
        """Append a crash flight-recorder snapshot.

        The detail dict must keep its payload under nested keys (the
        flight recorder does) so ``known_targets``/``committed_intent``
        replay never mistakes it for lifecycle intent.
        """
        return self._append(REC_FLIGHT, "", "flight", epoch, dict(detail))

    def flight_records(self) -> list[JournalRecord]:
        """Every crash snapshot, oldest first."""
        return [r for r in self.records if r.rec == REC_FLIGHT]

    def _require_open(self, txn: str) -> JournalRecord:
        record = self._open.get(txn)
        if record is None:
            raise JournalError(f"txn {txn} is not open")
        return record

    # -- artifact catalog ------------------------------------------------

    def record_program(self, program) -> str:
        """File the program in the artifact catalog; returns its tag."""
        tag = program.tag()
        self.catalog[tag] = program
        return tag

    def program_for(self, tag: str):
        program = self.catalog.get(tag)
        if program is None:
            raise JournalError(f"no catalogued program with tag {tag}")
        return program

    # -- replay ----------------------------------------------------------

    def committed_intent(self) -> dict[str, TargetIntent]:
        """Fold COMMIT records, in LSN order, into per-target goal state.

        Aborted and in-flight transactions contribute nothing: the goal
        state is exactly what the control plane promised *and* confirmed.
        """
        intent: dict[str, TargetIntent] = {}

        def of(target: str) -> TargetIntent:
            return intent.setdefault(target, TargetIntent())

        for record in self.records:
            if record.rec != REC_COMMIT:
                continue
            detail = record.detail
            if record.op == "deploy":
                state = of(detail["target"])
                state.hooks[detail["hook"]] = detail["tag"]
                state.programs[detail["name"]] = detail["tag"]
            elif record.op == "broadcast":
                for leg in detail.get("legs", []):
                    state = of(leg["target"])
                    state.hooks[leg["hook"]] = leg["tag"]
                    state.programs[leg["name"]] = leg["tag"]
            elif record.op == "xstate":
                of(detail["target"]).xstates[detail["spec"]["name"]] = detail[
                    "spec"
                ]
            elif record.op == "xstate_destroy":
                of(detail["target"]).xstates.pop(detail["name"], None)
            elif record.op == "detach":
                state = of(detail["target"])
                tag = state.programs.pop(detail["name"], None)
                for hook, owner in list(state.hooks.items()):
                    if owner == tag:
                        del state.hooks[hook]
        return intent

    def in_flight(self) -> list[InFlightTxn]:
        """Intents with no terminal record, oldest first."""
        open_txns: dict[str, InFlightTxn] = {}
        for record in self.records:
            if record.rec == REC_INTEND:
                open_txns[record.txn] = InFlightTxn(
                    txn=record.txn, op=record.op, epoch=record.epoch,
                    intend=record,
                )
            elif record.rec == REC_PHASE and record.txn in open_txns:
                open_txns[record.txn].phases.append(record)
            elif record.rec in _TERMINAL:
                open_txns.pop(record.txn, None)
        return list(open_txns.values())

    def known_targets(self) -> list[str]:
        """Every target any intent has ever named, sorted."""
        targets: set[str] = set()
        for record in self.records:
            detail = record.detail
            if "target" in detail:
                targets.add(detail["target"])
            for leg in detail.get("legs", []):
                targets.add(leg["target"])
            for name in detail.get("targets", []):
                targets.add(name)
        return sorted(targets)

    # -- persistence -----------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize the WAL (records only; the catalog is the artifact
        store and persists separately)."""
        return "\n".join(record.to_json() for record in self.records)

    @classmethod
    def from_jsonl(
        cls, text: str, catalog: Optional[dict] = None
    ) -> "IntentJournal":
        journal = cls()
        max_lsn = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            record = JournalRecord.from_json(line)
            journal.records.append(record)
            max_lsn = max(max_lsn, record.lsn)
        journal._lsn = itertools.count(max_lsn + 1)
        for txn in journal.in_flight():
            journal._open[txn.txn] = txn.intend
        if catalog:
            journal.catalog.update(catalog)
        return journal


def xstate_spec_detail(spec: XStateSpec) -> dict:
    """Serialize an XStateSpec for a journal record."""
    return {
        "name": spec.name,
        "map_type": spec.map_type.value,
        "key_size": spec.key_size,
        "value_size": spec.value_size,
        "max_entries": spec.max_entries,
    }
