"""Data-driven control loops (paper §7, item 5).

"Data-driven control loops for datacenter resource management": the
control plane already reads every target's XState over one-sided RDMA,
so it can close the loop -- watch counters, evaluate a policy, react
by deploying/retiring extensions -- without any host agent.

:class:`ControlLoop` is the generic loop; :class:`ThresholdPolicy`
implements the common case (deploy a guard extension when a counter
crosses a threshold, retire it on recovery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.errors import ReproError
from repro.core.codeflow import CodeFlow
from repro.core.xstate import XStateHandle


@dataclass
class LoopObservation:
    """One sampling round."""

    time_us: float
    values: dict[str, int]
    action: str = "none"


@dataclass
class ThresholdPolicy:
    """Deploy ``guard`` when ``counter_key`` >= high; retire at <= low.

    Hysteresis (high > low) prevents deploy/retire flapping.
    """

    counter_key: bytes
    high: int
    low: int
    guard_program: object
    hook_name: str

    def __post_init__(self):
        if self.low > self.high:
            raise ReproError("hysteresis requires low <= high")

    def decide(self, value: int, guard_live: bool) -> str:
        if not guard_live and value >= self.high:
            return "deploy"
        if guard_live and value <= self.low:
            return "retire"
        return "none"


class ControlLoop:
    """Watch one XState on one target; react per policy."""

    def __init__(
        self,
        codeflow: CodeFlow,
        xstate: XStateHandle,
        policy: ThresholdPolicy,
        interval_us: float = 1_000.0,
    ):
        self.codeflow = codeflow
        self.sim = codeflow.sim
        self.xstate = xstate
        self.policy = policy
        self.interval_us = interval_us
        self.observations: list[LoopObservation] = []
        self.guard_live = False
        self._proc = None

    def start(self, duration_us: float) -> None:
        """Run the loop in the background for ``duration_us``."""
        self._proc = self.sim.spawn(
            self._loop(duration_us), name="control-loop"
        )

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("loop stopped")
        self._proc = None

    def run_once(self) -> Generator:
        """One observe-decide-act round; returns the observation."""
        raw = yield from self.codeflow.xstate_lookup(
            self.xstate, self.policy.counter_key
        )
        value = int.from_bytes(raw or bytes(8), "little")
        action = self.policy.decide(value, self.guard_live)
        observation = LoopObservation(
            time_us=self.sim.now,
            values={"counter": value},
            action=action,
        )
        if action == "deploy":
            yield from self.codeflow.control_plane.inject(
                self.codeflow, self.policy.guard_program, self.policy.hook_name
            )
            self.guard_live = True
        elif action == "retire":
            yield from self.codeflow.detach(self.policy.guard_program.name)
            self.guard_live = False
        self.observations.append(observation)
        return observation

    def _loop(self, duration_us: float) -> Generator:
        end = self.sim.now + duration_us
        while self.sim.now < end:
            yield self.sim.timeout(self.interval_us)
            yield from self.run_once()

    # -- reporting -------------------------------------------------------

    def actions(self) -> list[tuple[float, str]]:
        return [
            (obs.time_us, obs.action)
            for obs in self.observations
            if obs.action != "none"
        ]

    def reaction_latency_us(self) -> Optional[float]:
        """Time from the first above-threshold sample to the deploy."""
        above_at = None
        for obs in self.observations:
            if above_at is None and obs.values["counter"] >= self.policy.high:
                above_at = obs.time_us
            if obs.action == "deploy" and above_at is not None:
                return obs.time_us - above_at
        return None
