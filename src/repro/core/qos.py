"""QoS-aware isolation for the control plane (paper §7, item 2).

With many tenants sharing one RDX control plane, injection traffic
itself needs isolation: a tenant bulk-rolling 95K-insn programs must
not starve another tenant's microsecond hot-patch.  This module adds

* per-tenant **token buckets** over injection bytes (rate isolation),
* a **priority lane** so small/urgent deploys overtake bulk ones,
* per-tenant accounting for operators.

The scheduler wraps ``RdxControlPlane.inject``; everything else is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import SecurityError
from repro.sim.core import Simulator
from repro.sim.resources import Resource


@dataclass
class TenantQuota:
    """Per-tenant injection budget."""

    name: str
    rate_bytes_per_s: float
    burst_bytes: float
    priority: int = 0  # lower = more urgent


@dataclass
class TenantUsage:
    deploys: int = 0
    bytes_injected: float = 0.0
    throttled_us: float = 0.0


class _TokenBucket:
    def __init__(self, sim: Simulator, rate_per_s: float, burst: float):
        self.sim = sim
        self.rate_per_us = rate_per_s / 1e6
        self.capacity = burst
        self._tokens = burst
        self._stamp = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.capacity, self._tokens + (now - self._stamp) * self.rate_per_us
        )
        self._stamp = now

    def delay_for(self, amount: float) -> float:
        """Microseconds until ``amount`` tokens are available."""
        self._refill()
        if self._tokens >= amount:
            return 0.0
        return (amount - self._tokens) / self.rate_per_us

    def take(self, amount: float) -> None:
        self._refill()
        self._tokens -= amount  # may go negative only via races; callers wait


class QosScheduler:
    """Rate + priority isolation in front of a control plane."""

    def __init__(self, control_plane, wire_slots: int = 1):
        self.control_plane = control_plane
        self.sim = control_plane.sim
        self._quotas: dict[str, TenantQuota] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        self.usage: dict[str, TenantUsage] = {}
        # The shared injection wire: priority queue of deploys.
        self._wire = Resource(self.sim, capacity=wire_slots)

    def register_tenant(self, quota: TenantQuota) -> None:
        if quota.name in self._quotas:
            raise SecurityError(f"tenant {quota.name!r} already registered")
        self._quotas[quota.name] = quota
        self._buckets[quota.name] = _TokenBucket(
            self.sim, quota.rate_bytes_per_s, quota.burst_bytes
        )
        self.usage[quota.name] = TenantUsage()

    def inject(
        self,
        tenant: str,
        codeflow,
        program,
        hook_name: str,
        **kwargs,
    ) -> Generator:
        """Tenant-scoped deploy: bucket-gated, priority-scheduled."""
        quota = self._quotas.get(tenant)
        if quota is None:
            raise SecurityError(f"unknown tenant {tenant!r}")
        usage = self.usage[tenant]
        size = program.size_bytes()

        # Rate gate: wait out the token deficit.
        bucket = self._buckets[tenant]
        delay = bucket.delay_for(size)
        if delay > 0:
            usage.throttled_us += delay
            yield self.sim.timeout(delay)
        bucket.take(size)

        # Priority lane onto the shared wire.
        grant = self._wire.request(priority=quota.priority)
        yield grant
        try:
            report = yield from self.control_plane.inject(
                codeflow, program, hook_name, **kwargs
            )
        finally:
            self._wire.release(grant)
        usage.deploys += 1
        usage.bytes_injected += size
        return report

    def tenant_report(self) -> dict[str, TenantUsage]:
        return dict(self.usage)
