"""QoS-aware isolation for the control plane (paper §7, item 2).

With many tenants sharing one RDX control plane, injection traffic
itself needs isolation: a tenant bulk-rolling 95K-insn programs must
not starve another tenant's microsecond hot-patch.  This module adds

* per-tenant **token buckets** over injection bytes (rate isolation),
* a **priority lane** so small/urgent deploys overtake bulk ones,
* per-tenant accounting for operators.

The scheduler wraps ``RdxControlPlane.inject``; everything else is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator

from repro.errors import SecurityError
from repro.sim.core import Simulator
from repro.sim.resources import Resource


@dataclass
class TenantQuota:
    """Per-tenant injection budget."""

    name: str
    rate_bytes_per_s: float
    burst_bytes: float
    priority: int = 0  # lower = more urgent


@dataclass
class TenantUsage:
    deploys: int = 0
    bytes_injected: float = 0.0
    throttled_us: float = 0.0


class _TokenBucket:
    def __init__(self, sim: Simulator, rate_per_s: float, burst: float):
        self.sim = sim
        self.rate_per_us = rate_per_s / 1e6
        self.capacity = burst
        self._tokens = burst
        self._stamp = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.capacity, self._tokens + (now - self._stamp) * self.rate_per_us
        )
        self._stamp = now

    def delay_for(self, amount: float) -> float:
        """Microseconds until ``amount`` tokens are available (a peek).

        Advisory only: the balance can move before the caller acts on
        the answer.  Anything that intends to *spend* the tokens must
        use :meth:`reserve`, which debits atomically.
        """
        self._refill()
        if self._tokens >= amount:
            return 0.0
        return (amount - self._tokens) / self.rate_per_us

    def reserve(self, amount: float) -> float:
        """Atomically debit ``amount`` tokens; return the wait time.

        The debit happens immediately -- before the caller yields -- so
        two interleaved generators can never both observe the same
        balance and overdraw the budget (the old ``delay_for`` ...
        ``take`` two-step let exactly that happen: both passed the
        check, both took, and the tenant got double its rate).  A
        negative balance is a *reservation deficit*: the returned delay
        is how long the refill stream needs to repay it, so back-to-back
        reservers serialize at precisely the configured rate.
        """
        self._refill()
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate_per_us

    def take(self, amount: float) -> None:
        """Deprecated two-step spend; kept for API compatibility.

        Callers should use :meth:`reserve` -- a ``delay_for``/``take``
        pair is racy across yields.
        """
        self._refill()
        self._tokens -= amount


class QosScheduler:
    """Rate + priority isolation in front of a control plane."""

    def __init__(self, control_plane, wire_slots: int = 1):
        self.control_plane = control_plane
        self.sim = control_plane.sim
        self._quotas: dict[str, TenantQuota] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        self.usage: dict[str, TenantUsage] = {}
        # The shared injection wire: priority queue of deploys.
        self._wire = Resource(self.sim, capacity=wire_slots)

    def register_tenant(self, quota: TenantQuota) -> None:
        if quota.name in self._quotas:
            raise SecurityError(f"tenant {quota.name!r} already registered")
        self._quotas[quota.name] = quota
        self._buckets[quota.name] = _TokenBucket(
            self.sim, quota.rate_bytes_per_s, quota.burst_bytes
        )
        self.usage[quota.name] = TenantUsage()

    def inject(
        self,
        tenant: str,
        codeflow,
        program,
        hook_name: str,
        **kwargs,
    ) -> Generator:
        """Tenant-scoped deploy: bucket-gated, priority-scheduled."""
        quota = self._quotas.get(tenant)
        if quota is None:
            raise SecurityError(f"unknown tenant {tenant!r}")
        usage = self.usage[tenant]
        size = program.size_bytes()

        # Rate gate: atomically reserve the bytes, then wait out the
        # deficit.  The reserve happens before any yield, so concurrent
        # deploys of one tenant serialize at the configured rate
        # instead of both sneaking under the same balance.
        bucket = self._buckets[tenant]
        delay = bucket.reserve(size)
        if delay > 0:
            usage.throttled_us += delay
            yield self.sim.timeout(delay)

        # Priority lane onto the shared wire.
        grant = self._wire.request(priority=quota.priority)
        yield grant
        try:
            report = yield from self.control_plane.inject(
                codeflow, program, hook_name, **kwargs
            )
        finally:
            self._wire.release(grant)
        usage.deploys += 1
        usage.bytes_injected += size
        return report

    def throttle_hint(self, tenant: str, size_bytes: float) -> float:
        """Advisory wait (us) a ``size_bytes`` deploy would incur now.

        A peek, not a reservation -- admission controllers use it to
        shed requests whose rate deficit exceeds policy instead of
        parking a worker on them.
        """
        quota = self._quotas.get(tenant)
        if quota is None:
            raise SecurityError(f"unknown tenant {tenant!r}")
        return self._buckets[tenant].delay_for(size_bytes)

    def tenant_report(self) -> dict[str, TenantUsage]:
        """Point-in-time *snapshot* of per-tenant accounting.

        Returns copies, not the live accumulators: callers sampling
        windows (benchmarks, billing sweeps) can hold two reports and
        diff them without the second mutating under the first.
        """
        return {name: replace(usage) for name, usage in self.usage.items()}

    def reset_usage(self) -> dict[str, TenantUsage]:
        """Zero the accumulators; returns the final pre-reset snapshot.

        The companion contract to :meth:`tenant_report` for windowed
        sampling: ``reset_usage()`` at a window edge yields the closed
        window's totals and opens a fresh one.
        """
        final = self.tenant_report()
        for name in self.usage:
            self.usage[name] = TenantUsage()
        return final
