"""Remote XState management with Meta-XState indirection (paper §3.4).

The strawman -- pre-registering max-size instances of every XState type
-- wastes memory; RDX instead reserves one scratchpad at boot and adds
one level of indirection:

* the **Meta XState** is a plain qword array at the scratchpad base;
  entry *i* holds the address of the *i*-th XState's header (0 = free);
* each XState is laid out as ``[16-byte header][slot data]`` where the
  header self-describes the geometry, letting the *local* data path
  adopt remotely created state without an agent
  (:meth:`repro.sandbox.sandbox.Sandbox._adopt_remote_map`).

The allocator here is the *control-plane-side* view: it decides remote
addresses and produces the byte images; the actual placement happens
over RDMA in :meth:`repro.core.codeflow.CodeFlow.deploy_xstate`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro import params
from repro.errors import XStateError
from repro.ebpf.maps import MapType
from repro.mem.memory import RegionAllocator

_HEADER = struct.Struct("<BBHIII")
_MAGIC = 0xA5

_MAP_TYPE_IDS = {MapType.HASH: 1, MapType.ARRAY: 2, MapType.PERCPU_ARRAY: 3}
_MAP_TYPE_BY_ID = {v: k for k, v in _MAP_TYPE_IDS.items()}


@dataclass(frozen=True)
class XStateSpec:
    """What a user asks for: a named map with a geometry."""

    name: str
    map_type: MapType
    key_size: int
    value_size: int
    max_entries: int

    def slot_bytes(self) -> int:
        return 8 + self.key_size + self.value_size

    def data_bytes(self) -> int:
        return self.slot_bytes() * self.max_entries

    def total_bytes(self) -> int:
        return params.XSTATE_HEADER_BYTES + self.data_bytes()


@dataclass(frozen=True)
class XStateHeader:
    """Decoded self-describing header."""

    map_type: MapType
    key_size: int
    value_size: int
    max_entries: int
    version: int


def encode_xstate_header(spec: XStateSpec, version: int = 1) -> bytes:
    """Serialize the 16-byte header written before the slot data."""
    return _HEADER.pack(
        _MAGIC,
        _MAP_TYPE_IDS[spec.map_type],
        spec.key_size,
        spec.value_size,
        spec.max_entries,
        version,
    )


def decode_xstate_header(data: bytes) -> Optional[XStateHeader]:
    """Parse a header; None when the magic byte does not match."""
    if len(data) < _HEADER.size:
        return None
    magic, type_id, key_size, value_size, max_entries, version = _HEADER.unpack_from(
        data
    )
    if magic != _MAGIC or type_id not in _MAP_TYPE_BY_ID:
        return None
    return XStateHeader(
        map_type=_MAP_TYPE_BY_ID[type_id],
        key_size=key_size,
        value_size=value_size,
        max_entries=max_entries,
        version=version,
    )


@dataclass
class XStateHandle:
    """Control-plane record of one deployed XState."""

    spec: XStateSpec
    meta_index: int
    header_addr: int
    data_addr: int

    @property
    def name(self) -> str:
        return self.spec.name


class RemoteScratchpad:
    """Control-plane mirror of one sandbox's scratchpad.

    Tracks Meta-XState entries and sub-allocations without touching the
    remote node; the CodeFlow performs the matching RDMA writes.
    """

    def __init__(self, scratchpad_addr: int, scratchpad_bytes: int,
                 meta_slots: int = params.XSTATE_META_SLOTS):
        self.meta_addr = scratchpad_addr
        self.meta_slots = meta_slots
        heap_base = scratchpad_addr + meta_slots * params.XSTATE_META_ENTRY_BYTES
        heap_bytes = scratchpad_bytes - meta_slots * params.XSTATE_META_ENTRY_BYTES
        if heap_bytes <= 0:
            raise XStateError("scratchpad too small for the Meta index")
        self.allocator = RegionAllocator(heap_base, heap_bytes, label="xstate")
        self._entries: dict[int, XStateHandle] = {}
        self._by_name: dict[str, XStateHandle] = {}

    def meta_entry_addr(self, index: int) -> int:
        return self.meta_addr + index * params.XSTATE_META_ENTRY_BYTES

    def allocate(self, spec: XStateSpec) -> XStateHandle:
        """Pick a meta slot + heap chunk for ``spec`` (no remote I/O)."""
        if spec.name in self._by_name:
            raise XStateError(f"XState {spec.name!r} already deployed")
        index = next(
            (i for i in range(self.meta_slots) if i not in self._entries), None
        )
        if index is None:
            raise XStateError("Meta-XState index full")
        header_addr = self.allocator.alloc(spec.total_bytes(), align=64)
        handle = XStateHandle(
            spec=spec,
            meta_index=index,
            header_addr=header_addr,
            data_addr=header_addr + params.XSTATE_HEADER_BYTES,
        )
        self._entries[index] = handle
        self._by_name[spec.name] = handle
        return handle

    def adopt(
        self, spec: XStateSpec, meta_index: int, header_addr: int
    ) -> XStateHandle:
        """Record an XState that already exists remotely (recovery path).

        A restarted control plane rebuilding its scratchpad mirror from
        the journal reserves the chunk in place rather than allocating
        a fresh one, so the handle's addresses match remote reality.
        """
        if spec.name in self._by_name:
            raise XStateError(f"XState {spec.name!r} already deployed")
        if meta_index in self._entries:
            raise XStateError(f"meta slot {meta_index} already tracked")
        self.allocator.reserve(header_addr, spec.total_bytes())
        handle = XStateHandle(
            spec=spec,
            meta_index=meta_index,
            header_addr=header_addr,
            data_addr=header_addr + params.XSTATE_HEADER_BYTES,
        )
        self._entries[meta_index] = handle
        self._by_name[spec.name] = handle
        return handle

    def release(self, handle: XStateHandle) -> None:
        """Free the meta slot + chunk (destroy path)."""
        if self._entries.get(handle.meta_index) is not handle:
            raise XStateError(f"XState {handle.name!r} not live")
        del self._entries[handle.meta_index]
        del self._by_name[handle.name]
        self.allocator.free(handle.header_addr)

    def by_name(self, name: str) -> Optional[XStateHandle]:
        return self._by_name.get(name)

    @property
    def live_count(self) -> int:
        return len(self._entries)

    @property
    def bytes_live(self) -> int:
        return self.allocator.bytes_live
