"""Fault injection for reliability testing (paper §7, item 4).

The paper lists "fault injection for reliability testing" among RDX's
new use cases: because the control plane owns every byte it writes, it
can deliberately produce the failure modes operators fear -- torn
images, stale caches, flipped bits, lost flushes -- and verify that
detection (CRC crash) and recovery (rollback) fire as designed.

``FaultInjector`` wraps a CodeFlow's sync layer; each fault is armed
for the next matching operation, then disarms.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import ReproError
from repro.core.codeflow import CodeFlow


class FaultKind(enum.Enum):
    """Supported fault families."""

    TORN_WRITE = "torn_write"  # only a prefix of the payload lands
    BIT_FLIP = "bit_flip"  # one byte corrupted in-flight
    DROPPED_FLUSH = "dropped_flush"  # cc_event silently does nothing
    STALE_READ = "stale_read"  # read returns pre-write bytes


@dataclass
class FaultRecord:
    """One injected fault, for the experiment log."""

    kind: FaultKind
    target: str
    detail: str


class FaultInjector:
    """Arms one-shot faults on a CodeFlow's remote operations."""

    def __init__(self, codeflow: CodeFlow, seed: int = 0):
        self.codeflow = codeflow
        self._rng = random.Random(seed)
        self._armed: Optional[FaultKind] = None
        self.injected: list[FaultRecord] = []

    def arm(self, kind: FaultKind) -> None:
        """Arm ``kind`` for the next matching operation."""
        if self._armed is not None:
            raise ReproError(f"fault {self._armed} already armed")
        self._armed = kind

    @property
    def armed(self) -> Optional[FaultKind]:
        return self._armed

    # -- faulty operation wrappers ---------------------------------------

    def write(self, addr: int, data: bytes) -> Generator:
        """A write that honours an armed TORN_WRITE / BIT_FLIP."""
        payload = data
        if self._armed is FaultKind.TORN_WRITE:
            cut = max(1, len(data) // 2 + self._rng.randrange(-8, 8))
            cut = min(cut, len(data) - 1) if len(data) > 1 else 1
            payload = data[:cut]
            self._record(FaultKind.TORN_WRITE, f"{cut}/{len(data)} bytes landed")
        elif self._armed is FaultKind.BIT_FLIP:
            index = self._rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[index] ^= 1 << self._rng.randrange(8)
            payload = bytes(corrupted)
            self._record(FaultKind.BIT_FLIP, f"byte {index} flipped")
        yield from self.codeflow.sync.write(addr, payload)

    def cc_event(self, addr: int, length: int = 64) -> Generator:
        """A flush that honours an armed DROPPED_FLUSH."""
        if self._armed is FaultKind.DROPPED_FLUSH:
            self._record(FaultKind.DROPPED_FLUSH, f"flush of {length}B dropped")
            # Charge the time, skip the effect.
            yield self.codeflow.sim.timeout(2.0)
            return
        yield from self.codeflow.sync.cc_event(addr, length)

    def read(self, addr: int, length: int) -> Generator:
        """A read that honours an armed STALE_READ (returns zeros)."""
        if self._armed is FaultKind.STALE_READ:
            self._record(FaultKind.STALE_READ, f"{length}B stale")
            yield self.codeflow.sim.timeout(2.0)
            return bytes(length)
        data = yield from self.codeflow.sync.read(addr, length)
        return data

    def deploy_with_faults(self, program, linked, hook_name: str) -> Generator:
        """Deploy ``linked`` using the faulty write for image staging.

        Mirrors :meth:`CodeFlow.deploy_prog`'s stage-then-flip shape,
        but the image write goes through :meth:`write` so an armed
        TORN_WRITE / BIT_FLIP lands in the staged image.  Returns the
        code address (the pointer flip still commits: the fault model
        targets the *payload*, not the commit protocol).
        """
        codeflow = self.codeflow
        code_addr = codeflow.code_allocator.alloc(len(linked.code), align=64)
        yield from self.write(code_addr, linked.code)
        hook_addr = codeflow.manifest.hook_table_addr + (
            codeflow.manifest.hook_layout[hook_name] * 8
        )
        yield from codeflow.sync.tx(
            obj_addr=code_addr, obj_bytes=b"", qword_addr=hook_addr,
            new_qword=code_addr,
        )
        yield from self.cc_event(hook_addr, 8)
        return code_addr

    def _record(self, kind: FaultKind, detail: str) -> None:
        self.injected.append(
            FaultRecord(kind=kind, target=self.codeflow.sandbox.name, detail=detail)
        )
        self._armed = None


def crash_campaign(
    testbed, program, rounds: int = 8, seed: int = 3
) -> tuple[int, int]:
    """A ready-made reliability experiment.

    Repeatedly deploys ``program`` with a randomly armed payload fault
    and counts (faults injected, crashes detected by the data path).
    A healthy system detects every payload corruption.
    """
    from repro.errors import SandboxCrash

    rng = random.Random(seed)
    injector = FaultInjector(testbed.codeflow, seed=seed)
    entry = testbed.sim.run_process(
        testbed.control.prepare_for(testbed.codeflow, program)
    )
    linked = testbed.codeflow.linker.link(entry.binary)[0]
    detected = 0
    for _ in range(rounds):
        injector.arm(rng.choice([FaultKind.TORN_WRITE, FaultKind.BIT_FLIP]))
        testbed.sim.run_process(
            injector.deploy_with_faults(program, linked, "ingress")
        )
        try:
            testbed.sandbox.run_hook("ingress", bytes(256))
        except SandboxCrash:
            detected += 1
            testbed.sandbox.crashed = False
    return len(injector.injected), detected
