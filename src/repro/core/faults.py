"""Fault injection for reliability testing (paper §7, item 4).

The paper lists "fault injection for reliability testing" among RDX's
new use cases: because the control plane owns every byte it writes, it
can deliberately produce the failure modes operators fear -- torn
images, stale caches, flipped bits, lost flushes -- and verify that
detection (CRC crash) and recovery (rollback) fire as designed.

Two injection styles coexist:

* **wrapper style** (the original API): :meth:`FaultInjector.write` /
  :meth:`cc_event` / :meth:`read` are drop-in faulty replacements for
  the sync primitives, used by bespoke experiments;
* **hook style**: :meth:`FaultInjector.attach` installs a filter on
  the CodeFlow's :class:`~repro.core.sync.RemoteSync`, so faults fire
  inside *unmodified* deploy paths (``control_plane.inject``,
  ``rdx_broadcast``) -- the broadcast abort tests use this.

Beyond payload corruption, the injector drives the *environment* fault
model: node crashes (:meth:`crash_target`), link partitions
(:meth:`partition_target`) and added delay (:meth:`delay_target`),
implemented by :class:`~repro.net.topology.Host` /
:class:`~repro.net.fabric.Fabric` state that both the message fabric
and the RNIC honour.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ReproError, TransientFault
from repro.obs import telemetry_of
from repro.core.codeflow import CodeFlow


class FaultKind(enum.Enum):
    """Supported fault families."""

    TORN_WRITE = "torn_write"  # only a prefix of the payload lands
    BIT_FLIP = "bit_flip"  # one byte corrupted in-flight
    DROPPED_FLUSH = "dropped_flush"  # cc_event silently does nothing
    STALE_READ = "stale_read"  # read returns pre-write bytes
    TRANSIENT = "transient"  # one op fails retryably (flaky link)
    NODE_CRASH = "node_crash"  # target host fail-stops mid-operation
    LINK_PARTITION = "link_partition"  # control <-> target link severed
    DELAY = "delay"  # target link gains extra latency


#: Kinds that corrupt a *payload* (armed via :meth:`FaultInjector.arm`
#: and applied to code-image writes).
PAYLOAD_KINDS = (FaultKind.TORN_WRITE, FaultKind.BIT_FLIP)

#: The menu a schedule-fuzz plan chooses a fault from (slot 0 = no
#: fault, keeping "choice 0 is the unperturbed schedule" true here
#: too).  Only *recoverable* kinds: the fuzz scenarios assert on race
#: findings and invariants, so a fault must perturb the schedule
#: without fail-stopping the world on its own.
FUZZ_FAULT_MENU = (
    None,
    FaultKind.TRANSIENT,
    FaultKind.TORN_WRITE,
    FaultKind.BIT_FLIP,
    FaultKind.DROPPED_FLUSH,
)


@dataclass
class FaultRecord:
    """One injected fault, for the experiment log."""

    kind: FaultKind
    target: str
    detail: str


class _HookAction:
    """What the sync layer should do with one intercepted op."""

    __slots__ = ("mangled", "drop", "error")

    def __init__(self, mangled=None, drop=False, error=None):
        self.mangled = mangled
        self.drop = drop
        self.error = error


class FaultInjector:
    """Arms one-shot (or counted) faults on a CodeFlow's remote ops."""

    def __init__(self, codeflow: CodeFlow, seed: int = 0):
        self.codeflow = codeflow
        self._rng = random.Random(seed)
        self._armed: Optional[FaultKind] = None
        self._armed_count = 0
        self.injected: list[FaultRecord] = []

    def arm(self, kind: FaultKind, count: int = 1) -> None:
        """Arm ``kind`` for the next ``count`` matching operations."""
        if self._armed is not None:
            raise ReproError(f"fault {self._armed} already armed")
        if count < 1:
            raise ReproError(f"fault count must be >= 1: {count}")
        self._armed = kind
        self._armed_count = count

    def disarm(self) -> None:
        self._armed = None
        self._armed_count = 0

    def arm_from_plan(self, plan, site: str) -> Optional[FaultKind]:
        """Let a schedule-fuzz decision tape pick the next fault.

        ``plan`` is a :class:`~repro.fuzz.plan.SchedulePlan`; the
        chosen :data:`FUZZ_FAULT_MENU` entry is armed (``None`` arms
        nothing) and returned, so scenarios can log what the tape did.
        A minimized tape that drops this decision reverts to the
        fault-free schedule -- fault type is one more shrinkable
        choice, exactly like a delay.
        """
        kind = FUZZ_FAULT_MENU[plan.choose(site, len(FUZZ_FAULT_MENU))]
        if kind is not None:
            self.arm(kind)
        return kind

    @property
    def armed(self) -> Optional[FaultKind]:
        return self._armed

    # -- hook-style injection (fires inside unmodified deploy paths) -----

    def attach(self) -> None:
        """Install this injector as the CodeFlow's sync fault filter."""
        self.codeflow.sync.fault_hook = self._hook

    def detach(self) -> None:
        if self.codeflow.sync.fault_hook is self._hook:
            self.codeflow.sync.fault_hook = None

    def _hook(self, op: str, addr: int, data) -> Optional[_HookAction]:
        kind = self._armed
        if kind is None:
            return None
        if kind in PAYLOAD_KINDS:
            # Payload faults target the bulk image transfer, not the
            # tiny control writes (bubble flags, metadata, doorbells).
            if op != "write" or data is None or not self._in_code_region(addr):
                return None
            if kind is FaultKind.TORN_WRITE:
                return _HookAction(mangled=self._tear(data))
            return _HookAction(mangled=self._flip(data))
        if kind is FaultKind.DROPPED_FLUSH:
            if op != "cc_event":
                return None
            self._record(kind, "flush dropped in-flight")
            return _HookAction(drop=True)
        if kind is FaultKind.STALE_READ:
            # Stale reads target the bulk verify readback, not the tiny
            # 8-byte control reads (epoch fences, bubble flags).
            if op != "read" or not self._in_code_region(addr):
                return None
            self._record(kind, "read served stale bytes")
            return _HookAction(drop=True)
        if kind is FaultKind.TRANSIENT:
            self._record(kind, f"{op} @{addr:#x} failed retryably")
            return _HookAction(
                error=TransientFault(f"injected transient fault on {op}")
            )
        if kind is FaultKind.NODE_CRASH:
            # Fail-stop the target as this op goes out: the op -- and
            # every retry after it -- sees an unreachable host.
            self._record(kind, f"host crashed during {op}")
            self.codeflow.sandbox.host.crash()
            return None
        if kind is FaultKind.LINK_PARTITION:
            self._record(kind, f"link severed during {op}")
            self._set_partition(True)
            return None
        return None

    def _in_code_region(self, addr: int) -> bool:
        manifest = self.codeflow.manifest
        return manifest.code_addr <= addr < manifest.code_addr + manifest.code_bytes

    def _tear(self, data: bytes) -> bytes:
        cut = max(1, len(data) // 2 + self._rng.randrange(-8, 8))
        cut = min(cut, len(data) - 1) if len(data) > 1 else 1
        self._record(FaultKind.TORN_WRITE, f"{cut}/{len(data)} bytes landed")
        return data[:cut]

    def _flip(self, data: bytes) -> bytes:
        index = self._rng.randrange(len(data))
        corrupted = bytearray(data)
        corrupted[index] ^= 1 << self._rng.randrange(8)
        self._record(FaultKind.BIT_FLIP, f"byte {index} flipped")
        return bytes(corrupted)

    # -- environment faults (crash / partition / delay) -------------------

    def crash_target(self) -> None:
        """Fail-stop the target host immediately."""
        self._record(FaultKind.NODE_CRASH, "host fail-stopped", armed=False)
        self.codeflow.sandbox.host.crash()

    def recover_target(self, reboot: bool = False) -> None:
        """Bring the target host back.

        ``reboot=True`` additionally warm-reboots the sandbox runtime:
        the process comes back with its volatile control surface wiped
        (hooks, metadata, epoch, Meta-XState index) even though DRAM
        survived -- the realistic post-crash state an anti-entropy
        reconciler must repair before the target serves traffic again.
        """
        self.codeflow.sandbox.host.recover()
        if reboot:
            self.codeflow.sandbox.warm_reboot()
            self.codeflow.reset_after_reboot()

    def partition_target(self) -> None:
        """Sever the control-plane <-> target link (both directions)."""
        self._record(FaultKind.LINK_PARTITION, "link severed", armed=False)
        self._set_partition(True)

    def heal_partition(self) -> None:
        self._set_partition(False)

    def delay_target(self, extra_us: float) -> None:
        """Add ``extra_us`` one-way latency to the target's link."""
        host = self.codeflow.sandbox.host
        if host.fabric is None:
            raise ReproError(f"{host.name} is not attached to a fabric")
        if extra_us > 0:
            self._record(
                FaultKind.DELAY, f"+{extra_us}us link delay", armed=False
            )
        host.fabric.set_extra_delay(host.name, extra_us)

    def _set_partition(self, severed: bool) -> None:
        target = self.codeflow.sandbox.host
        control = self.codeflow.control_plane.host
        fabric = target.fabric
        if fabric is None or control.fabric is not fabric:
            # No shared fabric to partition; fall back to a crash-style
            # unreachability marker on the target itself.
            if severed:
                target.crash()
            else:
                target.recover()
            return
        if severed:
            fabric.partition(control.name, target.name)
        else:
            fabric.heal(control.name, target.name)

    # -- faulty operation wrappers ---------------------------------------

    def write(self, addr: int, data: bytes) -> Generator:
        """A write that honours an armed TORN_WRITE / BIT_FLIP."""
        payload = data
        if self._armed is FaultKind.TORN_WRITE:
            payload = self._tear(data)
        elif self._armed is FaultKind.BIT_FLIP:
            payload = self._flip(data)
        yield from self.codeflow.sync.write(addr, payload)

    def cc_event(self, addr: int, length: int = 64) -> Generator:
        """A flush that honours an armed DROPPED_FLUSH."""
        if self._armed is FaultKind.DROPPED_FLUSH:
            self._record(FaultKind.DROPPED_FLUSH, f"flush of {length}B dropped")
            # Charge the time, skip the effect.
            yield self.codeflow.sim.timeout(2.0)
            return
        yield from self.codeflow.sync.cc_event(addr, length)

    def read(self, addr: int, length: int) -> Generator:
        """A read that honours an armed STALE_READ (returns zeros)."""
        if self._armed is FaultKind.STALE_READ:
            self._record(FaultKind.STALE_READ, f"{length}B stale")
            yield self.codeflow.sim.timeout(2.0)
            return bytes(length)
        data = yield from self.codeflow.sync.read(addr, length)
        return data

    def deploy_with_faults(self, program, linked, hook_name: str) -> Generator:
        """Deploy ``linked`` using the faulty write for image staging.

        Mirrors :meth:`CodeFlow.deploy_prog`'s stage-then-flip shape,
        but the image write goes through :meth:`write` so an armed
        TORN_WRITE / BIT_FLIP lands in the staged image.  Returns the
        code address (the pointer flip still commits: the fault model
        targets the *payload*, not the commit protocol).
        """
        codeflow = self.codeflow
        code_addr = codeflow.code_allocator.alloc(len(linked.code), align=64)
        yield from self.write(code_addr, linked.code)
        hook_addr = codeflow.manifest.hook_table_addr + (
            codeflow.manifest.hook_layout[hook_name] * 8
        )
        yield from codeflow.sync.tx(
            obj_addr=code_addr, obj_bytes=b"", qword_addr=hook_addr,
            new_qword=code_addr,
        )
        yield from self.cc_event(hook_addr, 8)
        return code_addr

    def _record(self, kind: FaultKind, detail: str, armed: bool = True) -> None:
        self.injected.append(
            FaultRecord(kind=kind, target=self.codeflow.sandbox.name, detail=detail)
        )
        telemetry_of(self.codeflow.sim).counter(
            "rdx.faults.injected", kind=kind.value
        ).inc()
        if armed:
            self._armed_count -= 1
            if self._armed_count <= 0:
                self._armed = None
                self._armed_count = 0


def crash_campaign(
    testbed, program, rounds: int = 8, seed: int = 3
) -> tuple[int, int]:
    """A ready-made reliability experiment.

    Repeatedly deploys ``program`` with a randomly armed payload fault
    and counts (faults injected, crashes detected by the data path).
    A healthy system detects every payload corruption.
    """
    from repro.errors import SandboxCrash

    rng = random.Random(seed)
    injector = FaultInjector(testbed.codeflow, seed=seed)
    entry = testbed.sim.run_process(
        testbed.control.prepare_for(testbed.codeflow, program)
    )
    linked = testbed.codeflow.linker.link(entry.binary)[0]
    detected = 0
    for _ in range(rounds):
        injector.arm(rng.choice([FaultKind.TORN_WRITE, FaultKind.BIT_FLIP]))
        testbed.sim.run_process(
            injector.deploy_with_faults(program, linked, "ingress")
        )
        try:
            testbed.sandbox.run_hook("ingress", bytes(256))
        except SandboxCrash:
            detected += 1
            testbed.sandbox.crashed = False
    return len(injector.injected), detected
