"""Declarative cluster-wide extension orchestration (paper §7, item 1).

The paper's first open direction asks for "a declarative language for
cluster-wide extension orchestration".  This module provides one: an
*intent* document names extensions, their target selectors, ordering
constraints, and a rollout strategy; the planner compiles it against
the current fleet into an executable plan of CodeFlow operations; the
executor runs the plan (transactional broadcast or staged canary).

Example intent::

    intent = OrchestrationIntent(
        name="rollout-telemetry-v2",
        extensions=[
            ExtensionSpec(name="telemetry", program=module,
                          hook="filter0", targets=Selector(labels={"tier": "web"})),
            ExtensionSpec(name="rl", program=rl_module, hook="filter1",
                          targets=Selector(names=("svc0",)),
                          after=("telemetry",)),
        ],
        strategy=Strategy(kind="bbu"),
    )
    plan = plan_intent(intent, fleet)
    outcome = sim.run_process(execute_plan(control, plan))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

import networkx as nx

from repro.errors import ConsistencyError, DeployError
from repro.core.broadcast import CodeFlowGroup
from repro.core.codeflow import CodeFlow
from repro.core.control_plane import RdxControlPlane


@dataclass(frozen=True)
class Selector:
    """Which targets an extension applies to.

    Empty selector = every registered target.  ``names`` selects
    exactly; ``labels`` must all match the target's label set.
    """

    names: tuple[str, ...] = ()
    labels: dict = field(default_factory=dict, hash=False)

    def matches(self, name: str, labels: dict) -> bool:
        if self.names and name not in self.names:
            return False
        for key, value in self.labels.items():
            if labels.get(key) != value:
                return False
        return True


@dataclass
class ExtensionSpec:
    """One extension in an intent."""

    name: str
    program: object  # BpfProgram | WasmModule
    hook: str
    targets: Selector = field(default_factory=Selector)
    #: Names of extensions that must be live before this one rolls out.
    after: tuple[str, ...] = ()


@dataclass
class Strategy:
    """How to roll out.

    * ``bbu`` -- one transactional broadcast per extension wave,
      buffered by Big Bubble Update (the default);
    * ``canary`` -- deploy to ``canary_count`` targets first, then,
      if the health check passes, to the rest.
    """

    kind: str = "bbu"
    canary_count: int = 1

    def __post_init__(self):
        if self.kind not in ("bbu", "canary"):
            raise ConsistencyError(f"unknown strategy {self.kind!r}")


@dataclass
class OrchestrationIntent:
    """The declarative document."""

    name: str
    extensions: list[ExtensionSpec]
    strategy: Strategy = field(default_factory=Strategy)


@dataclass
class Fleet:
    """The live targets the planner resolves selectors against."""

    codeflows: dict[str, CodeFlow]
    labels: dict[str, dict] = field(default_factory=dict)

    def select(self, selector: Selector) -> list[str]:
        return sorted(
            name
            for name in self.codeflows
            if selector.matches(name, self.labels.get(name, {}))
        )


@dataclass
class PlanStep:
    """One wave: deploy ``extension`` to ``targets`` atomically."""

    extension: ExtensionSpec
    targets: list[str]


@dataclass
class Plan:
    intent_name: str
    strategy: Strategy
    steps: list[PlanStep]

    def summary(self) -> str:
        lines = [f"plan {self.intent_name!r} ({self.strategy.kind})"]
        for index, step in enumerate(self.steps):
            lines.append(
                f"  wave {index}: {step.extension.name} -> "
                f"{', '.join(step.targets)} @ {step.extension.hook}"
            )
        return "\n".join(lines)


@dataclass
class WaveOutcome:
    extension: str
    targets: list[str]
    window_us: float
    canary_passed: Optional[bool] = None


@dataclass
class PlanOutcome:
    intent_name: str
    waves: list[WaveOutcome] = field(default_factory=list)

    @property
    def total_window_us(self) -> float:
        return sum(w.window_us for w in self.waves)


def plan_intent(intent: OrchestrationIntent, fleet: Fleet) -> Plan:
    """Compile an intent against the fleet into ordered waves.

    Ordering comes from each extension's ``after`` constraints
    (topological); unknown references and cycles are rejected at plan
    time, never mid-rollout.
    """
    by_name = {spec.name: spec for spec in intent.extensions}
    if len(by_name) != len(intent.extensions):
        raise ConsistencyError("duplicate extension names in intent")
    graph = nx.DiGraph()
    graph.add_nodes_from(by_name)
    for spec in intent.extensions:
        for dependency in spec.after:
            if dependency not in by_name:
                raise ConsistencyError(
                    f"{spec.name!r} depends on unknown {dependency!r}"
                )
            graph.add_edge(dependency, spec.name)
    if not nx.is_directed_acyclic_graph(graph):
        raise ConsistencyError("intent dependencies contain a cycle")

    steps = []
    for name in nx.topological_sort(graph):
        spec = by_name[name]
        targets = fleet.select(spec.targets)
        if not targets:
            raise DeployError(
                f"extension {name!r}: selector matches no targets"
            )
        steps.append(PlanStep(extension=spec, targets=targets))
    return Plan(intent_name=intent.name, strategy=intent.strategy, steps=steps)


def execute_plan(
    control: RdxControlPlane,
    fleet: Fleet,
    plan: Plan,
    health_check=None,
) -> Generator:
    """Run the plan; returns a :class:`PlanOutcome`.

    ``health_check(codeflow) -> bool`` gates canary promotion; the
    default accepts when the canary sandbox has not crashed.
    """
    outcome = PlanOutcome(intent_name=plan.intent_name)
    obs = control.obs
    with obs.span(
        "rdx.orchestrate", intent=plan.intent_name,
        strategy=plan.strategy.kind, waves=len(plan.steps),
    ) as plan_span:
        for step in plan.steps:
            flows = [fleet.codeflows[name] for name in step.targets]
            with obs.span(
                "rdx.orchestrate.wave", parent=plan_span,
                extension=step.extension.name, targets=len(flows),
            ):
                if (
                    plan.strategy.kind == "canary"
                    and len(flows) > plan.strategy.canary_count
                ):
                    wave = yield from _canary_wave(
                        control, step, flows, plan.strategy, health_check
                    )
                else:
                    wave = yield from _bbu_wave(control, step, flows)
            obs.counter("rdx.orchestrate.waves").inc()
            obs.histogram("rdx.orchestrate.wave.window_us").observe(
                wave.window_us
            )
            if wave.canary_passed is not None:
                obs.counter(
                    "rdx.orchestrate.canary",
                    outcome="passed" if wave.canary_passed else "failed",
                ).inc()
            outcome.waves.append(wave)
    return outcome


def _bbu_wave(control, step: PlanStep, flows: Sequence[CodeFlow]) -> Generator:
    group = CodeFlowGroup(flows)
    result = yield from group.broadcast(
        [step.extension.program] * len(flows), step.extension.hook
    )
    return WaveOutcome(
        extension=step.extension.name,
        targets=list(step.targets),
        window_us=result.bubble_window_us,
    )


def _canary_wave(
    control, step: PlanStep, flows: Sequence[CodeFlow], strategy: Strategy,
    health_check,
) -> Generator:
    check = health_check or (lambda flow: not flow.sandbox.crashed)
    canaries = flows[: strategy.canary_count]
    rest = flows[strategy.canary_count :]
    for flow in canaries:
        yield from control.inject(flow, step.extension.program, step.extension.hook)
    if not all(check(flow) for flow in canaries):
        return WaveOutcome(
            extension=step.extension.name,
            targets=[flow.sandbox.name for flow in canaries],
            window_us=0.0,
            canary_passed=False,
        )
    group = CodeFlowGroup(rest) if rest else None
    window = 0.0
    if group is not None:
        result = yield from group.broadcast(
            [step.extension.program] * len(rest), step.extension.hook
        )
        window = result.bubble_window_us
    return WaveOutcome(
        extension=step.extension.name,
        targets=list(step.targets),
        window_us=window,
        canary_passed=True,
    )
