"""CodeFlow: the per-target handle for remote extension lifecycle.

A CodeFlow binds the remote control plane to one sandbox (Fig 3).  All
its mutating operations are simulation processes (generators) because
they move real bytes over the simulated RDMA fabric; none of them
charge CPU time on the *target* host -- that is the agentless
property the experiments measure.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Generator, Optional, TYPE_CHECKING

from repro import params
from repro.errors import DeployError, StaleEpochError, XStateError
from repro.hb import events as hb
from repro.ebpf.jit import JitBinary, RelocKind
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.mem.memory import RegionAllocator
from repro.obs import telemetry_of
from repro.obs.spans import Span
from repro.sandbox.metadata import MetadataBlock, SLOT_DETACHED, SLOT_LIVE
from repro.sandbox.sandbox import Sandbox
from repro.core.linker import RemoteLinker
from repro.core.sync import RemoteSync
from repro.core.xstate import (
    RemoteScratchpad,
    XStateHandle,
    XStateSpec,
    encode_xstate_header,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control_plane import RdxControlPlane

_deploy_ids = itertools.count(1)


@dataclass
class DeployReport:
    """Per-phase latency breakdown of one deployment (Fig 4b)."""

    deploy_id: int
    program_name: str
    started_us: float
    dispatch_us: float = 0.0
    link_us: float = 0.0
    write_us: float = 0.0
    commit_us: float = 0.0
    cc_us: float = 0.0
    total_us: float = 0.0
    #: Where the image landed -- the join key between this deploy's
    #: trace and the sandbox-side first-exec edge (obs/spans.py).
    code_addr: int = 0

    def phases(self) -> dict[str, float]:
        return {
            "dispatch": self.dispatch_us,
            "link": self.link_us,
            "write": self.write_us,
            "commit": self.commit_us,
            "cc": self.cc_us,
        }


@dataclass
class DeployedProgram:
    """Control-plane record of one live extension on the target."""

    program: BpfProgram
    hook_name: str
    code_addr: int
    code_len: int
    metadata_slot: int
    version: int = 1
    #: Previous code addresses, newest last (rollback targets).
    history: list[int] = field(default_factory=list)


class CodeFlow:
    """Handle bound to one remote sandbox (rdx_create_codeflow result)."""

    def __init__(
        self,
        control_plane: "RdxControlPlane",
        sandbox: Sandbox,
        sync: RemoteSync,
        helper_addresses: dict[str, int],
    ):
        self.control_plane = control_plane
        self.sim = control_plane.sim
        self.obs = telemetry_of(self.sim)
        self.sandbox = sandbox
        self.sync = sync
        manifest = sandbox.ctx_manifest
        if manifest is None:
            raise DeployError(f"{sandbox.name}: ctx_register has not run")
        self.manifest = manifest
        self.scratchpad = RemoteScratchpad(
            manifest.scratchpad_addr,
            manifest.scratchpad_bytes,
            manifest.meta_xstate_slots,
        )
        self.code_allocator = RegionAllocator(
            manifest.code_addr, manifest.code_bytes, label=f"{sandbox.name}.rcode"
        )
        self.linker = RemoteLinker(
            helper_addresses, self._map_address_of
        )
        self._metadata_used: set[int] = set()
        self.deployed: dict[str, DeployedProgram] = {}
        #: hook name -> program name currently owning that hook.
        self._hook_owner: dict[str, str] = {}
        self.reports: list[DeployReport] = []
        self._lock_token = 0xC0DE_0000 + sandbox.sandbox_id
        #: Tenant label stamped on this target's deploy metrics and
        #: trace roots (multi-tenant aggregation; "" = unowned).
        self.tenant = ""
        #: True when the last :meth:`link_code` was served from the
        #: control plane's linked-image cache -- the fast deploy path
        #: then skips the stub rendezvous (the layout is already known).
        self._last_link_cached = False
        #: The deployment epoch this handle writes under (fencing token);
        #: set by :meth:`stamp_epoch` during rdx_create_codeflow.
        self.epoch = 0
        self.closed = False
        #: ((local verbs ctx, local qp), (target verbs ctx, target qp)),
        #: populated by the control plane for teardown.
        self._qp_pair: tuple = ()

    # -- deployment epochs (fencing) ------------------------------------------

    def _read_remote_epoch(self) -> Generator:
        raw = yield from self.sync.read(self.sandbox.epoch_addr, 8)
        return int.from_bytes(raw, "little")

    def stamp_epoch(self, epoch: int) -> Generator:
        """Install ``epoch`` as the target's fencing word.

        Epochs only move forward: if the target already carries a newer
        one, another control-plane incarnation owns it and this writer
        must stand down (:class:`StaleEpochError`) -- the CAS makes the
        read-check-write race-free against a concurrent claimant.
        """
        current = yield from self._read_remote_epoch()
        if current > epoch:
            self._fenced(current)
        if current != epoch:
            prior = yield from self.sync.cas(
                self.sandbox.epoch_addr, current, epoch
            )
            if prior != current:
                self._fenced(prior)
            self.sync.hb_epoch = epoch
            yield from self.sync.cc_event(self.sandbox.epoch_addr, 8)
        self.epoch = epoch
        self.sync.hb_epoch = epoch

    def check_fence(self) -> Generator:
        """Refuse to mutate a target whose epoch has moved past ours.

        One 8-byte read before any mutating bytes land; this is what
        keeps a stale control plane resuming after a partition from
        overwriting its successor's work.
        """
        current = yield from self._read_remote_epoch()
        if current > self.epoch:
            self._fenced(current)

    def _fenced(self, remote_epoch: int) -> None:
        self.obs.counter("rdx.epoch.fenced", target=self.sandbox.name).inc()
        raise StaleEpochError(
            f"{self.sandbox.name}: target epoch {remote_epoch} supersedes "
            f"ours ({self.epoch}); this control plane has been fenced"
        )

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Release the QP pair backing this handle (local teardown)."""
        if self.closed:
            return
        for ctx, qp in self._qp_pair:
            ctx.destroy_qp(qp)
        self.closed = True

    def _map_address_of(self, name: str) -> Optional[int]:
        handle = self.scratchpad.by_name(name)
        if handle is not None:
            return handle.data_addr
        # Fall back to maps the sandbox exported in its boot-time GOT.
        symbol = self.sandbox.got.lookup(name)
        if symbol is not None:
            return symbol.address
        return None

    # -- rdx_link_code -------------------------------------------------------

    def link_code(
        self, binary: JitBinary, parent_span: Optional[Span] = None
    ) -> Generator:
        """Link ``binary`` against this target; returns the linked image.

        On the pipelined path the control plane's linked-image cache,
        keyed by (code CRC, arch, GOT-layout fingerprint), skips the
        per-relocation rewriting when this target resolves every symbol
        to the same addresses a previous link did.  The fingerprint
        covers the *resolved addresses*, not just the symbol names --
        layout churn (e.g. address reuse after a warm reboot) must miss
        rather than serve a stale image.
        """
        self._last_link_cached = False
        plane = self.control_plane
        with self.obs.span("rdx.link", parent=parent_span, target=self.sandbox.name):
            key = (
                self._link_cache_key(binary)
                if params.RDX_PIPELINED_DEPLOY
                else None
            )
            if key is not None:
                cached = plane.linked_images.get(key)
                if cached is not None:
                    # LRU touch: dict ordering is the recency list.
                    plane.linked_images[key] = plane.linked_images.pop(key)
                    plane.link_cache_hits += 1
                    self.obs.counter("rdx.link.cache_hit").inc()
                    yield from plane.host.cpu.run(
                        params.RDX_LINK_CACHE_LOOKUP_US
                    )
                    self._last_link_cached = True
                    return cached
                plane.link_cache_misses += 1
                self.obs.counter("rdx.link.cache_miss").inc()
            linked, cost_us = self.linker.link(binary)
            yield from plane.host.cpu.run(cost_us)
            if key is not None:
                plane.linked_images[key] = linked
                while len(plane.linked_images) > params.RDX_LINK_CACHE_CAP:
                    del plane.linked_images[next(iter(plane.linked_images))]
        self.obs.histogram("rdx.link.cpu_us").observe(cost_us)
        return linked

    def _link_cache_key(self, binary: JitBinary) -> Optional[tuple]:
        """(code CRC, arch, GOT-layout fingerprint) for the image cache.

        Returns ``None`` when a symbol does not resolve -- the real
        linker then raises its precise error -- or for an image with no
        relocations worth caching.  The fingerprint hashes
        ``kind:symbol=address`` for every relocation, so two targets
        share a cache entry iff a fresh link would produce identical
        bytes on both.
        """
        parts = []
        for reloc in binary.relocations:
            if reloc.kind is RelocKind.HELPER:
                address = self.linker.helper_addresses.get(reloc.symbol)
            else:
                address = self._map_address_of(reloc.symbol)
            if address is None:
                return None
            parts.append(f"{reloc.kind.value}:{reloc.symbol}={address:x}")
        fingerprint = zlib.crc32(";".join(parts).encode()) & 0xFFFFFFFF
        # The image's trailing 4 bytes are its own CRC32; hashing the
        # full image would therefore yield the CRC *residue* -- the
        # same constant for every image -- so hash the payload only.
        content = zlib.crc32(binary.code[:-4]) & 0xFFFFFFFF
        return (content, binary.arch, fingerprint)

    # -- rdx_deploy_prog ------------------------------------------------------

    def deploy_prog(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        flush_hook: bool = True,
        retain_history: bool = True,
        parent_span: Optional[Span] = None,
        fenced: bool = False,
    ) -> Generator:
        """One-sided injection of a linked image + metadata + hook flip.

        Returns a :class:`DeployReport`.  The hook flip is a
        transactional qword swap, optionally followed by a
        cache-coherence event on the hook line.  With ``retain_history``
        the previous image stays resident as a rollback target; without
        it, its code pages are freed.

        With :data:`repro.params.RDX_PIPELINED_DEPLOY` set (default)
        the body runs on the batched fast path (one WR chain for image
        + metadata, direct CAS commit); the serial path remains as the
        ablation baseline.  ``fenced`` certifies the caller already ran
        :meth:`check_fence` for this operation (a broadcast leg fences
        when its bubble rises); the fast path then skips the duplicate
        epoch read -- one fence per transaction, not one per op.
        """
        if not linked.is_linked:
            raise DeployError(f"{program.name}: image has unresolved relocations")
        report = DeployReport(
            deploy_id=next(_deploy_ids),
            program_name=program.name,
            started_us=self.sim.now,
        )
        span = self.obs.span(
            "rdx.deploy", parent=parent_span,
            program=program.name, target=self.sandbox.name, hook=hook_name,
        )
        body = (
            self._deploy_body_fast
            if params.RDX_PIPELINED_DEPLOY
            else self._deploy_body
        )
        # Trace context rides the sync layer for the body's duration:
        # every WR chain, chunk land, commit CAS, and cc flush below
        # is recorded under this span's trace id.
        saved_trace, self.sync.trace_span = self.sync.trace_span, span
        try:
            report = yield from body(
                program, linked, hook_name, flush_hook, retain_history,
                report, fenced,
            )
        except BaseException as err:
            span.status = "error"
            span.finish(error=str(err))
            raise
        finally:
            self.sync.trace_span = saved_trace
        span.finish(total_us=report.total_us, code_addr=report.code_addr)
        self._observe_deploy(report, len(linked.code))
        return report

    def _deploy_body(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        flush_hook: bool,
        retain_history: bool,
        report: DeployReport,
        fenced: bool = False,
    ) -> Generator:
        # Fence first: no byte may land on a target owned by a newer
        # control-plane epoch.  The serial baseline always re-fences
        # (``fenced`` is a fast-path optimization).
        del fenced
        yield from self.check_fence()

        # Dispatch: registry lookup, WQE prep, completion polling --
        # control-plane CPU only.
        mark = self.sim.now
        yield from self.control_plane.host.cpu.run(params.RDX_DISPATCH_US)
        yield self.sim.timeout(params.RDX_STUB_RENDEZVOUS_US)
        report.dispatch_us = self.sim.now - mark

        # Stage the image into fresh code pages.  The CAS expectation
        # is whatever currently owns the hook (possibly a different
        # program being replaced).
        mark = self.sim.now
        owner_name = self._hook_owner.get(hook_name)
        existing = self.deployed.get(owner_name) if owner_name else None
        code_addr = self.code_allocator.alloc(len(linked.code), align=64)
        # One hb transaction ties the body writes to their commit CAS:
        # the race checker requires the commit to be HB-after every
        # write carrying the same txn id.
        txn = (
            hb.txn_note(publishes=(code_addr, len(linked.code)))
            if params.RDX_HB_CHECK
            else None
        )
        body = {"txn": txn["txn"]} if txn else None
        yield from self.sync.write(code_addr, linked.code, note=body)
        report.write_us = self.sim.now - mark

        # Metadata slot fill (one 256-byte write).
        slot = self._pick_metadata_slot()
        block = MetadataBlock(
            state=SLOT_LIVE,
            prog_id=program.prog_id,
            insn_cnt=len(program.insns),
            ref_count=1,
            code_addr=code_addr,
            code_len=len(linked.code),
            hook_slot=self.manifest.hook_layout.get(hook_name, -1),
            version=(existing.version + 1) if existing else 1,
            tag=program.tag().encode()[:16],
            name=program.name,
        )
        yield from self.sync.write(
            self.manifest.metadata_addr + slot * 256, block.encode(), note=body
        )

        # Commit: transactional pointer flip on the hook qword.
        mark = self.sim.now
        hook_addr = self._hook_addr(hook_name)
        expected = existing.code_addr if existing else 0
        prior = yield from self.sync.tx(
            obj_addr=code_addr,
            obj_bytes=b"",  # image already staged above
            qword_addr=hook_addr,
            new_qword=code_addr,
            expect=expected,
            note=txn,
        )
        if prior != expected:
            self._unwind_failed_deploy(code_addr, slot)
            raise DeployError(
                f"{program.name}: hook {hook_name!r} CAS expected "
                f"{expected:#x}, found {prior:#x} (concurrent update?)"
            )
        report.commit_us = self.sim.now - mark

        if flush_hook:
            mark = self.sim.now
            yield from self.sync.cc_event(hook_addr, 8)
            report.cc_us = self.sim.now - mark

        self._bookkeep(
            program, hook_name, code_addr, len(linked.code), slot,
            block.version, existing, retain_history, report,
        )
        return report

    def _deploy_body_fast(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        flush_hook: bool,
        retain_history: bool,
        report: DeployReport,
        fenced: bool = False,
    ) -> Generator:
        """Pipelined deploy: image + metadata out as one WR chain.

        Differences from the serial body, and why each is sound:

        * Dispatch prepares the whole WQE list once and polls a single
          signaled completion (:data:`repro.params.RDX_DISPATCH_FAST_US`
          instead of :data:`repro.params.RDX_DISPATCH_US`).
        * The stub rendezvous is skipped when the linked image came out
          of the layout-fingerprinted cache -- a hit certifies the
          Meta descriptor + GOT window already match this layout.
        * Code image and metadata descriptor ride one chain (one
          doorbell, selective signaling); torn-write semantics per WR
          are unchanged because the RNIC still lands MTU chunks.
        * The commit is a direct CAS with no separate ordering fence:
          the chain's signaled completion *is* the ordering point (RC
          ordering retires every chained WR before the CAS issues on
          the same QP), so the serial path's
          :data:`repro.params.RDX_TX_COMMIT_US` wait disappears.  The
          completion still guarantees nothing about remote *CPU*
          visibility -- that remains ``rdx_cc_event``'s job below.
        * With ``fenced`` the epoch read is elided: the caller fenced
          this same transaction moments ago (broadcast fences when the
          bubble rises), and fencing is advisory at op start either
          way -- the window between fence and CAS exists at any grain.
        """
        if not fenced:
            yield from self.check_fence()

        mark = self.sim.now
        yield from self.control_plane.host.cpu.run(params.RDX_DISPATCH_FAST_US)
        if not self._last_link_cached:
            yield self.sim.timeout(params.RDX_STUB_RENDEZVOUS_US)
        report.dispatch_us = self.sim.now - mark

        owner_name = self._hook_owner.get(hook_name)
        existing = self.deployed.get(owner_name) if owner_name else None
        hook_addr = self._hook_addr(hook_name)
        expected = existing.code_addr if existing else 0
        code_addr = self.code_allocator.alloc(len(linked.code), align=64)
        slot = self._pick_metadata_slot()
        block = MetadataBlock(
            state=SLOT_LIVE,
            prog_id=program.prog_id,
            insn_cnt=len(program.insns),
            ref_count=1,
            code_addr=code_addr,
            code_len=len(linked.code),
            hook_slot=self.manifest.hook_layout.get(hook_name, -1),
            version=(existing.version + 1) if existing else 1,
            tag=program.tag().encode()[:16],
            name=program.name,
        )

        txn = (
            hb.txn_note(publishes=(code_addr, len(linked.code)))
            if params.RDX_HB_CHECK
            else None
        )
        body = {"txn": txn["txn"]} if txn else None
        mark = self.sim.now
        try:
            yield from self.sync.write_batch(
                [
                    (code_addr, linked.code),
                    (self.manifest.metadata_addr + slot * 256, block.encode()),
                ],
                note=body,
            )
        except BaseException:
            self._unwind_failed_deploy(code_addr, slot)
            raise
        report.write_us = self.sim.now - mark

        mark = self.sim.now
        prior = yield from self.sync.cas(hook_addr, expected, code_addr, note=txn)
        if prior != expected:
            self._unwind_failed_deploy(code_addr, slot)
            raise DeployError(
                f"{program.name}: hook {hook_name!r} CAS expected "
                f"{expected:#x}, found {prior:#x} (concurrent update?)"
            )
        # Semantic parity with the serial path: this was a
        # transactional install, just with the fence folded into the
        # chain completion.
        self.sync.tx_count += 1
        report.commit_us = self.sim.now - mark

        if flush_hook:
            mark = self.sim.now
            yield from self.sync.cc_event(hook_addr, 8)
            report.cc_us = self.sim.now - mark

        self._bookkeep(
            program, hook_name, code_addr, len(linked.code), slot,
            block.version, existing, retain_history, report,
        )
        return report

    def _unwind_failed_deploy(self, code_addr: int, slot: int) -> None:
        """Release local resources a failed deploy body had claimed.

        Both the code pages *and* the metadata slot go back -- leaking
        the slot on a CAS conflict used to exhaust the descriptor
        array under repeated contention.
        """
        self.code_allocator.free(code_addr)
        self._metadata_used.discard(slot)

    def _bookkeep(
        self,
        program: BpfProgram,
        hook_name: str,
        code_addr: int,
        code_len: int,
        slot: int,
        version: int,
        existing: Optional[DeployedProgram],
        retain_history: bool,
        report: DeployReport,
    ) -> None:
        """Shared post-commit record keeping for both deploy bodies."""
        record = DeployedProgram(
            program=program,
            hook_name=hook_name,
            code_addr=code_addr,
            code_len=code_len,
            metadata_slot=slot,
            version=version,
        )
        if existing:
            # The superseded descriptor slot is reusable either way.
            self._metadata_used.discard(existing.metadata_slot)
            if retain_history:
                record.history = existing.history + [existing.code_addr]
            else:
                record.history = list(existing.history)
                self.code_allocator.free(existing.code_addr)
            if existing.program.name != program.name:
                del self.deployed[existing.program.name]
        self.deployed[program.name] = record
        self._hook_owner[hook_name] = program.name
        report.total_us = self.sim.now - report.started_us
        report.code_addr = code_addr
        self.reports.append(report)
        self.control_plane.trace.record(
            self.sim.now,
            "rdx.deploy.done",
            program=program.name,
            target=self.sandbox.name,
            total_us=report.total_us,
        )

    def _observe_deploy(self, report: DeployReport, code_bytes: int) -> None:
        """Feed one successful deploy into the metrics registry."""
        self.obs.counter("rdx.deploy.count").inc()
        # Image bytes plus the 256-byte metadata descriptor write.
        self.obs.counter("rdx.deploy.bytes_written").inc(code_bytes + 256)
        for phase, value in report.phases().items():
            if phase == "link":
                continue  # linking is measured by its own rdx.link span
            self.obs.histogram(f"rdx.deploy.{phase}_us").observe(value)
        # Install-visible latency, exported per target and per tenant:
        # total_us ends after the cc flush, i.e. when a data-path read
        # can first observe the new pointer.
        self.obs.histogram(
            "rdx.deploy.install_visible_us",
            target=self.sandbox.name,
            tenant=self.tenant,
        ).observe(report.total_us)
        self.obs.histogram(
            "rdx.tenant.install_visible_us", tenant=self.tenant
        ).observe(report.total_us)

    def _pick_metadata_slot(self) -> int:
        for index in range(self.manifest.metadata_slots):
            if index not in self._metadata_used:
                self._metadata_used.add(index)
                return index
        raise DeployError(f"{self.sandbox.name}: metadata array full")

    def _hook_addr(self, hook_name: str) -> int:
        try:
            slot = self.manifest.hook_layout[hook_name]
        except KeyError:
            raise DeployError(
                f"{self.sandbox.name} has no hook {hook_name!r}"
            ) from None
        return self.manifest.hook_table_addr + slot * 8

    # -- detach / rollback support ----------------------------------------------

    def detach(self, program_name: str, record_intent: bool = True) -> Generator:
        """Remove the extension: hook -> 0, metadata -> detached."""
        record = self._record(program_name)
        yield from self.check_fence()
        txn = None
        if record_intent:
            plane = self.control_plane
            txn = plane._mint_txn("detach")
            plane.journal.begin(
                txn, "detach", plane.epoch,
                target=self.sandbox.name, name=program_name,
            )
        try:
            yield from self._detach_body(program_name, record)
        except BaseException as err:
            if txn is not None and not self.control_plane.crashed:
                self.control_plane.journal.abort(txn, reason=str(err))
            raise
        if txn is not None:
            self.control_plane.journal.commit(
                txn, target=self.sandbox.name, name=program_name
            )

    def _detach_body(
        self, program_name: str, record: DeployedProgram
    ) -> Generator:
        hook_addr = self._hook_addr(record.hook_name)
        prior = yield from self.sync.tx(
            obj_addr=record.code_addr,
            obj_bytes=b"",
            qword_addr=hook_addr,
            new_qword=0,
            expect=record.code_addr,
        )
        if prior != record.code_addr:
            raise DeployError(
                f"detach of {program_name}: hook moved underneath us"
            )
        yield from self.sync.cc_event(hook_addr, 8)
        state_addr = self.manifest.metadata_addr + record.metadata_slot * 256
        yield from self.sync.write(
            state_addr, SLOT_DETACHED.to_bytes(4, "little")
        )
        self.code_allocator.free(record.code_addr)
        self._metadata_used.discard(record.metadata_slot)
        if self._hook_owner.get(record.hook_name) == program_name:
            del self._hook_owner[record.hook_name]
        del self.deployed[program_name]

    def flip_to(self, program_name: str, code_addr: int) -> Generator:
        """Point the hook at an already-resident image (rollback path)."""
        record = self._record(program_name)
        hook_addr = self._hook_addr(record.hook_name)
        prior = yield from self.sync.tx(
            obj_addr=code_addr,
            obj_bytes=b"",
            qword_addr=hook_addr,
            new_qword=code_addr,
            expect=record.code_addr,
        )
        if prior != record.code_addr:
            raise DeployError(f"flip of {program_name}: concurrent update")
        yield from self.sync.cc_event(hook_addr, 8)
        record.history.append(record.code_addr)
        record.code_addr = code_addr
        record.version += 1

    def _record(self, program_name: str) -> DeployedProgram:
        record = self.deployed.get(program_name)
        if record is None:
            raise DeployError(f"{program_name!r} is not deployed")
        return record

    # -- recovery support (reconciler) -------------------------------------------

    def reset_after_reboot(self) -> None:
        """Forget all per-target records after the sandbox warm-rebooted.

        The target wiped its volatile control surface, so every record
        this handle holds describes unreachable bytes.  Allocators and
        the scratchpad mirror start over; the epoch drops to 0 so the
        next :meth:`stamp_epoch` re-fences the target.
        """
        manifest = self.manifest
        self.scratchpad = RemoteScratchpad(
            manifest.scratchpad_addr,
            manifest.scratchpad_bytes,
            manifest.meta_xstate_slots,
        )
        self.code_allocator = RegionAllocator(
            manifest.code_addr, manifest.code_bytes,
            label=f"{self.sandbox.name}.rcode",
        )
        self._metadata_used.clear()
        self.deployed.clear()
        self._hook_owner.clear()
        self.epoch = 0
        self.sync.hb_epoch = None  # unknown until the next stamp_epoch

    def adopt(
        self,
        program: BpfProgram,
        hook_name: str,
        slot: int,
        block: MetadataBlock,
    ) -> DeployedProgram:
        """Adopt a live remote deployment into this handle's books.

        A restarted control plane's fresh CodeFlow starts with empty
        records while the target still runs images a previous
        incarnation deployed.  Adoption reconstructs the
        :class:`DeployedProgram` record -- reserving the code pages in
        place -- so ordinary deploy/detach CAS expectations line up
        with remote reality again.
        """
        self.code_allocator.reserve(block.code_addr, block.code_len)
        self._metadata_used.add(slot)
        record = DeployedProgram(
            program=program,
            hook_name=hook_name,
            code_addr=block.code_addr,
            code_len=block.code_len,
            metadata_slot=slot,
            version=block.version,
        )
        self.deployed[program.name] = record
        if hook_name:
            self._hook_owner[hook_name] = program.name
        return record

    # -- rdx_deploy_xstate (§3.4) -------------------------------------------------

    def deploy_xstate(
        self,
        spec: XStateSpec,
        initial: Optional[BpfMap] = None,
        record_intent: bool = True,
    ) -> Generator:
        """Allocate + inject one XState; returns an :class:`XStateHandle`.

        Steps (paper §3.4): (1) allocate a chunk from the scratchpad,
        (2) write the self-describing header + initial image, (3) write
        the Meta-XState index entry, then flush so the data path can
        adopt the new state immediately.
        """
        from repro.core.journal import xstate_spec_detail

        yield from self.check_fence()
        txn = None
        if record_intent:
            plane = self.control_plane
            txn = plane._mint_txn("xstate")
            plane.journal.begin(
                txn, "xstate", plane.epoch,
                target=self.sandbox.name, spec=xstate_spec_detail(spec),
            )
        try:
            handle = yield from self._deploy_xstate_body(spec, initial)
        except BaseException as err:
            if txn is not None and not self.control_plane.crashed:
                self.control_plane.journal.abort(txn, reason=str(err))
            raise
        if txn is not None:
            # Placement rides along in the COMMIT record so a restarted
            # control plane can adopt the chunk where it already lives.
            placed = dict(xstate_spec_detail(spec))
            placed["meta_index"] = handle.meta_index
            placed["header_addr"] = handle.header_addr
            self.control_plane.journal.commit(
                txn, target=self.sandbox.name, spec=placed
            )
        return handle

    def _deploy_xstate_body(
        self, spec: XStateSpec, initial: Optional[BpfMap]
    ) -> Generator:
        handle = self.scratchpad.allocate(spec)
        if initial is None:
            initial = BpfMap(
                spec.map_type, spec.key_size, spec.value_size, spec.max_entries,
                name=spec.name,
            )
        image = initial.serialize()
        if len(image) != spec.data_bytes():
            self.scratchpad.release(handle)
            raise XStateError(
                f"{spec.name}: initial image is {len(image)} bytes, "
                f"spec wants {spec.data_bytes()}"
            )
        with self.obs.span(
            "rdx.xstate.deploy", xstate=spec.name, target=self.sandbox.name
        ):
            yield from self.sync.write(
                handle.header_addr, encode_xstate_header(spec) + image
            )
            meta_addr = self.scratchpad.meta_entry_addr(handle.meta_index)
            prior = yield from self.sync.tx(
                obj_addr=handle.header_addr,
                obj_bytes=b"",
                qword_addr=meta_addr,
                new_qword=handle.header_addr,
                expect=0,
            )
            if prior != 0:
                self.scratchpad.release(handle)
                raise XStateError(
                    f"{spec.name}: meta slot {handle.meta_index} already taken"
                )
            yield from self.sync.cc_event(
                handle.header_addr, params.XSTATE_HEADER_BYTES
            )
        self.obs.counter("rdx.xstate.bytes_written").inc(
            params.XSTATE_HEADER_BYTES + len(image)
        )
        return handle

    def destroy_xstate(
        self, handle: XStateHandle, record_intent: bool = True
    ) -> Generator:
        """Clear the meta entry and free the chunk."""
        if record_intent:
            plane = self.control_plane
            txn = plane._mint_txn("xstate_destroy")
            plane.journal.begin(
                txn, "xstate_destroy", plane.epoch,
                target=self.sandbox.name, name=handle.name,
            )
        yield from self._destroy_xstate_body(handle)
        if record_intent:
            plane.journal.commit(
                txn, target=self.sandbox.name, name=handle.name
            )

    def _destroy_xstate_body(self, handle: XStateHandle) -> Generator:
        meta_addr = self.scratchpad.meta_entry_addr(handle.meta_index)
        prior = yield from self.sync.cas(meta_addr, handle.header_addr, 0)
        if prior != handle.header_addr:
            raise XStateError(f"{handle.name}: meta entry changed underneath us")
        # Poison the header magic so stale pointers cannot re-adopt it.
        yield from self.sync.write(handle.header_addr, b"\x00")
        yield from self.sync.cc_event(handle.header_addr, params.XSTATE_HEADER_BYTES)
        self.scratchpad.release(handle)

    # -- XState access (inspector APIs) ---------------------------------------------

    def xstate_lookup(self, handle: XStateHandle, key: bytes) -> Generator:
        """Remote map lookup via one-sided READs (no target CPU)."""
        spec = handle.spec
        slot_bytes = spec.slot_bytes()
        image = yield from self.read_raw(handle.data_addr, spec.data_bytes())
        rebuilt = BpfMap.deserialize(
            image, spec.map_type, spec.key_size, spec.value_size,
            spec.max_entries, name=spec.name,
        )
        del slot_bytes
        return rebuilt.lookup(key)

    def xstate_update(
        self, handle: XStateHandle, key: bytes, value: bytes
    ) -> Generator:
        """Remote map update: locate the slot, then write it in place."""
        spec = handle.spec
        if len(key) != spec.key_size or len(value) != spec.value_size:
            raise XStateError(f"{handle.name}: bad key/value geometry")
        slot_bytes = spec.slot_bytes()
        image = yield from self.read_raw(handle.data_addr, spec.data_bytes())
        target_slot = None
        free_slot = None
        for index in range(spec.max_entries):
            chunk = image[index * slot_bytes : (index + 1) * slot_bytes]
            if chunk[0] and chunk[8 : 8 + spec.key_size] == key:
                target_slot = index
                break
            if not chunk[0] and free_slot is None:
                free_slot = index
        if target_slot is None:
            target_slot = free_slot
        if target_slot is None:
            raise XStateError(f"{handle.name}: map full")
        slot_addr = handle.data_addr + target_slot * slot_bytes
        payload = b"\x01" + bytes(7) + key + value
        yield from self.sync.write(slot_addr, payload)
        yield from self.sync.cc_event(slot_addr, len(payload))

    def read_raw(self, addr: int, length: int) -> Generator:
        """One-sided READ helper."""
        data = yield from self.sync.read(addr, length)
        return data
