"""CodeFlow: the per-target handle for remote extension lifecycle.

A CodeFlow binds the remote control plane to one sandbox (Fig 3).  All
its mutating operations are simulation processes (generators) because
they move real bytes over the simulated RDMA fabric; none of them
charge CPU time on the *target* host -- that is the agentless
property the experiments measure.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Generator, Optional, TYPE_CHECKING

from repro import params
from repro.errors import DeployError, StaleEpochError, XStateError
from repro.hb import events as hb
from repro.ebpf.jit import JitBinary, RelocKind
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.mem.memory import RegionAllocator
from repro.obs import target_label, telemetry_of
from repro.rdma.rnic import RNIC_MTU_BYTES
from repro.obs.spans import Span
from repro.sandbox.metadata import MetadataBlock, SLOT_DETACHED, SLOT_LIVE
from repro.sandbox.sandbox import Sandbox
from repro.core.linker import RemoteLinker
from repro.core.sync import RemoteSync
from repro.core.xstate import (
    RemoteScratchpad,
    XStateHandle,
    XStateSpec,
    encode_xstate_header,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.control_plane import RdxControlPlane

_deploy_ids = itertools.count(1)


@dataclass
class DeployReport:
    """Per-phase latency breakdown of one deployment (Fig 4b)."""

    deploy_id: int
    program_name: str
    started_us: float
    dispatch_us: float = 0.0
    link_us: float = 0.0
    write_us: float = 0.0
    commit_us: float = 0.0
    cc_us: float = 0.0
    total_us: float = 0.0
    #: Where the image landed -- the join key between this deploy's
    #: trace and the sandbox-side first-exec edge (obs/spans.py).
    code_addr: int = 0
    #: "full" (entire image staged into a fresh extent) or "delta"
    #: (only the dirty chunks written into the baseline extent).
    mode: str = "full"
    #: Dirty MTU chunks shipped (delta mode; 0 = metadata-only bump).
    delta_chunks: int = 0
    #: Bytes that crossed the wire for image + metadata descriptor.
    bytes_moved: int = 0
    #: Version of the baseline image the delta was diffed against.
    delta_base_version: int = 0
    #: True when the image came out of the warm linked-image pool --
    #: validate+JIT+link were all skipped (see :mod:`repro.serve`).
    warm: bool = False

    def phases(self) -> dict[str, float]:
        return {
            "dispatch": self.dispatch_us,
            "link": self.link_us,
            "write": self.write_us,
            "commit": self.commit_us,
            "cc": self.cc_us,
        }


@dataclass
class DeployedProgram:
    """Control-plane record of one live extension on the target."""

    program: BpfProgram
    hook_name: str
    code_addr: int
    code_len: int
    metadata_slot: int
    version: int = 1
    #: Previous code addresses, newest last (rollback targets).
    history: list[int] = field(default_factory=list)
    #: Exact bytes of the live image (None when unknown, e.g. after a
    #: rollback flip) -- what the next deploy diffs against once this
    #: extent becomes the baseline.
    image: Optional[bytes] = None
    #: (arch, GOT-layout fingerprint) the image was linked under: the
    #: part of the link-cache key a delta deploy must match.
    layout: Optional[tuple] = None
    #: Superseded-but-resident extent kept alive as the delta diff
    #: base (None when no baseline is registered).
    baseline_addr: Optional[int] = None
    #: Exact bytes resident at ``baseline_addr``.
    baseline_image: Optional[bytes] = None
    #: Version the baseline image shipped as (delta provenance).
    baseline_version: int = 0


@dataclass
class _DeltaPlan:
    """A certified delta: which dirty spans go into which extent."""

    existing: DeployedProgram
    target_addr: int
    ranges: list[tuple[int, bytes]]
    base_version: int


def _delta_ranges(old: bytes, new: bytes) -> list[tuple[int, bytes]]:
    """Dirty spans of ``new`` against ``old`` at MTU-chunk granularity.

    One ``(offset, payload)`` entry per RNIC MTU chunk that differs,
    with the payload trimmed to the chunk's dirty span and widened to
    whole cache lines -- the coherence flush that follows operates on
    lines, so sub-line trims save nothing.
    """
    line = params.CACHE_LINE_BYTES
    ranges: list[tuple[int, bytes]] = []
    for base in range(0, len(new), RNIC_MTU_BYTES):
        old_chunk = old[base : base + RNIC_MTU_BYTES]
        new_chunk = new[base : base + RNIC_MTU_BYTES]
        if old_chunk == new_chunk:
            continue
        dirty = [
            index
            for index in range(len(new_chunk))
            if new_chunk[index] != old_chunk[index]
        ]
        lo = dirty[0] // line * line
        hi = min(len(new_chunk), (dirty[-1] // line + 1) * line)
        ranges.append((base + lo, new_chunk[lo:hi]))
    return ranges


class CodeFlow:
    """Handle bound to one remote sandbox (rdx_create_codeflow result)."""

    def __init__(
        self,
        control_plane: "RdxControlPlane",
        sandbox: Sandbox,
        sync: RemoteSync,
        helper_addresses: dict[str, int],
    ):
        self.control_plane = control_plane
        self.sim = control_plane.sim
        self.obs = telemetry_of(self.sim)
        self.sandbox = sandbox
        self.sync = sync
        manifest = sandbox.ctx_manifest
        if manifest is None:
            raise DeployError(f"{sandbox.name}: ctx_register has not run")
        self.manifest = manifest
        self.scratchpad = RemoteScratchpad(
            manifest.scratchpad_addr,
            manifest.scratchpad_bytes,
            manifest.meta_xstate_slots,
        )
        self.code_allocator = RegionAllocator(
            manifest.code_addr, manifest.code_bytes, label=f"{sandbox.name}.rcode"
        )
        self.linker = RemoteLinker(
            helper_addresses, self._map_address_of
        )
        self._metadata_used: set[int] = set()
        self.deployed: dict[str, DeployedProgram] = {}
        #: hook name -> program name currently owning that hook.
        self._hook_owner: dict[str, str] = {}
        self.reports: list[DeployReport] = []
        self._lock_token = 0xC0DE_0000 + sandbox.sandbox_id
        #: Tenant label stamped on this target's deploy metrics and
        #: trace roots (multi-tenant aggregation; "" = unowned).
        self.tenant = ""
        #: True when the last :meth:`link_code` was served from the
        #: control plane's linked-image cache -- the fast deploy path
        #: then skips the stub rendezvous (the layout is already known).
        self._last_link_cached = False
        #: The cache key of the last :meth:`link_code` -- its
        #: ``(arch, fingerprint)`` tail is what certifies a delta
        #: deploy's layout assumption.  None when uncacheable.
        self._last_link_key: Optional[tuple] = None
        #: Extents retired by the previous generation, freed only once
        #: the *next* commit CAS is visible (no in-flight exec can
        #: still be decoding them by then).
        self._retired: list[int] = []
        #: The deployment epoch this handle writes under (fencing token);
        #: set by :meth:`stamp_epoch` during rdx_create_codeflow.
        self.epoch = 0
        self.closed = False
        #: CPU pool that pays deploy dispatch cost.  None means the
        #: control plane's own cores; a tree-broadcast relay points it
        #: at the relaying sandbox's host while the relayed leg runs,
        #: so rack-scale fan-out does not serialize on one host's CPU.
        self.dispatch_cpu = None
        #: ((local verbs ctx, local qp), (target verbs ctx, target qp)),
        #: populated by the control plane for teardown.
        self._qp_pair: tuple = ()

    # -- deployment epochs (fencing) ------------------------------------------

    def _read_remote_epoch(self) -> Generator:
        raw = yield from self.sync.read(self.sandbox.epoch_addr, 8)
        return int.from_bytes(raw, "little")

    def stamp_epoch(self, epoch: int) -> Generator:
        """Install ``epoch`` as the target's fencing word.

        Epochs only move forward: if the target already carries a newer
        one, another control-plane incarnation owns it and this writer
        must stand down (:class:`StaleEpochError`) -- the CAS makes the
        read-check-write race-free against a concurrent claimant.
        """
        current = yield from self._read_remote_epoch()
        if current > epoch:
            self._fenced(current)
        if current != epoch:
            prior = yield from self.sync.cas(
                self.sandbox.epoch_addr, current, epoch
            )
            if prior != current:
                self._fenced(prior)
            self.sync.hb_epoch = epoch
            yield from self.sync.cc_event(self.sandbox.epoch_addr, 8)
        self.epoch = epoch
        self.sync.hb_epoch = epoch

    def check_fence(self) -> Generator:
        """Refuse to mutate a target whose epoch has moved past ours.

        One 8-byte read before any mutating bytes land; this is what
        keeps a stale control plane resuming after a partition from
        overwriting its successor's work.
        """
        current = yield from self._read_remote_epoch()
        if current > self.epoch:
            self._fenced(current)

    def _fenced(self, remote_epoch: int) -> None:
        self.obs.counter(
            "rdx.epoch.fenced",
            target=target_label(
                self.sandbox.name, self.control_plane.shard
            ),
        ).inc()
        raise StaleEpochError(
            f"{self.sandbox.name}: target epoch {remote_epoch} supersedes "
            f"ours ({self.epoch}); this control plane has been fenced"
        )

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Release the QP pair backing this handle (local teardown)."""
        if self.closed:
            return
        for ctx, qp in self._qp_pair:
            ctx.destroy_qp(qp)
        self.closed = True

    def _map_address_of(self, name: str) -> Optional[int]:
        handle = self.scratchpad.by_name(name)
        if handle is not None:
            return handle.data_addr
        # Fall back to maps the sandbox exported in its boot-time GOT.
        symbol = self.sandbox.got.lookup(name)
        if symbol is not None:
            return symbol.address
        return None

    # -- rdx_link_code -------------------------------------------------------

    def link_code(
        self, binary: JitBinary, parent_span: Optional[Span] = None
    ) -> Generator:
        """Link ``binary`` against this target; returns the linked image.

        On the pipelined path the control plane's linked-image cache,
        keyed by (code CRC, arch, GOT-layout fingerprint), skips the
        per-relocation rewriting when this target resolves every symbol
        to the same addresses a previous link did.  The fingerprint
        covers the *resolved addresses*, not just the symbol names --
        layout churn (e.g. address reuse after a warm reboot) must miss
        rather than serve a stale image.
        """
        self._last_link_cached = False
        plane = self.control_plane
        with self.obs.span("rdx.link", parent=parent_span, target=self.sandbox.name):
            key = (
                self._link_cache_key(binary)
                if params.RDX_PIPELINED_DEPLOY
                else None
            )
            self._last_link_key = key
            if key is not None:
                cached = plane.linked_images.get(key)
                if cached is not None:
                    # LRU touch: dict ordering is the recency list.
                    plane.linked_images[key] = plane.linked_images.pop(key)
                    plane.link_cache_hits += 1
                    self.obs.counter("rdx.link.cache_hit").inc()
                    yield from plane.host.cpu.run(
                        params.RDX_LINK_CACHE_LOOKUP_US
                    )
                    self._last_link_cached = True
                    return cached
                plane.link_cache_misses += 1
                self.obs.counter("rdx.link.cache_miss").inc()
            linked, cost_us = self.linker.link(binary)
            yield from plane.host.cpu.run(cost_us)
            if key is not None:
                plane.linked_images[key] = linked
                while len(plane.linked_images) > params.RDX_LINK_CACHE_CAP:
                    del plane.linked_images[next(iter(plane.linked_images))]
        self.obs.histogram("rdx.link.cpu_us").observe(cost_us)
        return linked

    def layout_fingerprint(self, relocs) -> Optional[int]:
        """GOT-layout fingerprint of ``relocs`` against *this* target.

        ``relocs`` is an iterable of ``(RelocKind, symbol)`` pairs; the
        hash covers the *resolved addresses*, so it certifies that a
        fresh link of the same image would produce identical bytes on
        this target -- and naturally changes when layout churns (e.g.
        address reuse after a warm reboot).  Returns ``None`` when a
        symbol does not resolve.  Both the linked-image cache and the
        warm pool key on this; the warm pool additionally recomputes it
        at lookup time as its staleness check.
        """
        parts = []
        for kind, symbol in relocs:
            if kind is RelocKind.HELPER:
                address = self.linker.helper_addresses.get(symbol)
            else:
                address = self._map_address_of(symbol)
            if address is None:
                return None
            parts.append(f"{kind.value}:{symbol}={address:x}")
        return zlib.crc32(";".join(parts).encode()) & 0xFFFFFFFF

    def _link_cache_key(self, binary: JitBinary) -> Optional[tuple]:
        """(code CRC, arch, GOT-layout fingerprint) for the image cache.

        Returns ``None`` when a symbol does not resolve -- the real
        linker then raises its precise error -- or for an image with no
        relocations worth caching.  The fingerprint hashes
        ``kind:symbol=address`` for every relocation, so two targets
        share a cache entry iff a fresh link would produce identical
        bytes on both.
        """
        fingerprint = self.layout_fingerprint(
            (reloc.kind, reloc.symbol) for reloc in binary.relocations
        )
        if fingerprint is None:
            return None
        # The image's trailing 4 bytes are its own CRC32; hashing the
        # full image would therefore yield the CRC *residue* -- the
        # same constant for every image -- so hash the payload only.
        content = zlib.crc32(binary.code[:-4]) & 0xFFFFFFFF
        return (content, binary.arch, fingerprint)

    # -- rdx_deploy_prog ------------------------------------------------------

    def deploy_prog(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        flush_hook: bool = True,
        retain_history: bool = True,
        parent_span: Optional[Span] = None,
        fenced: bool = False,
    ) -> Generator:
        """One-sided injection of a linked image + metadata + hook flip.

        Returns a :class:`DeployReport`.  The hook flip is a
        transactional qword swap, optionally followed by a
        cache-coherence event on the hook line.  With ``retain_history``
        the previous image stays resident as a rollback target; without
        it, its code pages are freed.

        With :data:`repro.params.RDX_PIPELINED_DEPLOY` set (default)
        the body runs on the batched fast path (one WR chain for image
        + metadata, direct CAS commit); the serial path remains as the
        ablation baseline.  ``fenced`` certifies the caller already ran
        :meth:`check_fence` for this operation (a broadcast leg fences
        when its bubble rises); the fast path then skips the duplicate
        epoch read -- one fence per transaction, not one per op.
        """
        if not linked.is_linked:
            raise DeployError(f"{program.name}: image has unresolved relocations")
        report = DeployReport(
            deploy_id=next(_deploy_ids),
            program_name=program.name,
            started_us=self.sim.now,
        )
        span = self.obs.span(
            "rdx.deploy", parent=parent_span,
            program=program.name, target=self.sandbox.name, hook=hook_name,
        )
        body = (
            self._deploy_body_delta
            if params.RDX_PIPELINED_DEPLOY and params.RDX_DELTA_DEPLOY
            else self._deploy_body_fast
            if params.RDX_PIPELINED_DEPLOY
            else self._deploy_body
        )
        # Trace context rides the sync layer for the body's duration:
        # every WR chain, chunk land, commit CAS, and cc flush below
        # is recorded under this span's trace id.
        saved_trace, self.sync.trace_span = self.sync.trace_span, span
        try:
            report = yield from body(
                program, linked, hook_name, flush_hook, retain_history,
                report, fenced,
            )
        except BaseException as err:
            span.status = "error"
            span.finish(error=str(err))
            raise
        finally:
            self.sync.trace_span = saved_trace
        span.finish(total_us=report.total_us, code_addr=report.code_addr)
        self._observe_deploy(report, len(linked.code))
        return report

    def _deploy_body(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        flush_hook: bool,
        retain_history: bool,
        report: DeployReport,
        fenced: bool = False,
    ) -> Generator:
        # Fence first: no byte may land on a target owned by a newer
        # control-plane epoch.  The serial baseline always re-fences
        # (``fenced`` is a fast-path optimization).
        del fenced
        yield from self.check_fence()

        # Dispatch: registry lookup, WQE prep, completion polling --
        # initiator CPU only (the control plane, or a relaying host).
        mark = self.sim.now
        yield from (
            self.dispatch_cpu or self.control_plane.host.cpu
        ).run(params.RDX_DISPATCH_US)
        yield self.sim.timeout(params.RDX_STUB_RENDEZVOUS_US)
        report.dispatch_us = self.sim.now - mark

        # Stage the image into fresh code pages.  The CAS expectation
        # is whatever currently owns the hook (possibly a different
        # program being replaced).
        mark = self.sim.now
        owner_name = self._hook_owner.get(hook_name)
        existing = self.deployed.get(owner_name) if owner_name else None
        code_addr = self.code_allocator.alloc(len(linked.code), align=64)
        # One hb transaction ties the body writes to their commit CAS:
        # the race checker requires the commit to be HB-after every
        # write carrying the same txn id.
        txn = (
            hb.txn_note(publishes=(code_addr, len(linked.code)))
            if params.RDX_HB_CHECK
            else None
        )
        body = {"txn": txn["txn"]} if txn else None
        yield from self.sync.write(code_addr, linked.code, note=body)
        report.write_us = self.sim.now - mark

        # Metadata slot fill (one 256-byte write).
        slot = self._pick_metadata_slot()
        block = MetadataBlock(
            state=SLOT_LIVE,
            prog_id=program.prog_id,
            insn_cnt=len(program.insns),
            ref_count=1,
            code_addr=code_addr,
            code_len=len(linked.code),
            hook_slot=self.manifest.hook_layout.get(hook_name, -1),
            version=(existing.version + 1) if existing else 1,
            tag=program.tag().encode()[:16],
            name=program.name,
        )
        yield from self.sync.write(
            self.manifest.metadata_addr + slot * 256, block.encode(), note=body
        )

        # Commit: transactional pointer flip on the hook qword.
        mark = self.sim.now
        hook_addr = self._hook_addr(hook_name)
        expected = existing.code_addr if existing else 0
        prior = yield from self.sync.tx(
            obj_addr=code_addr,
            obj_bytes=b"",  # image already staged above
            qword_addr=hook_addr,
            new_qword=code_addr,
            expect=expected,
            note=txn,
        )
        if prior != expected:
            self._unwind_failed_deploy(code_addr, slot)
            raise DeployError(
                f"{program.name}: hook {hook_name!r} CAS expected "
                f"{expected:#x}, found {prior:#x} (concurrent update?)"
            )
        report.commit_us = self.sim.now - mark

        if flush_hook:
            mark = self.sim.now
            yield from self.sync.cc_event(hook_addr, 8)
            report.cc_us = self.sim.now - mark

        self._bookkeep(
            program, hook_name, code_addr, len(linked.code), slot,
            block.version, existing, retain_history, report,
            image=linked.code,
        )
        return report

    def _deploy_body_fast(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        flush_hook: bool,
        retain_history: bool,
        report: DeployReport,
        fenced: bool = False,
    ) -> Generator:
        """Pipelined deploy: image + metadata out as one WR chain.

        Differences from the serial body, and why each is sound:

        * Dispatch prepares the whole WQE list once and polls a single
          signaled completion (:data:`repro.params.RDX_DISPATCH_FAST_US`
          instead of :data:`repro.params.RDX_DISPATCH_US`).
        * The stub rendezvous is skipped when the linked image came out
          of the layout-fingerprinted cache -- a hit certifies the
          Meta descriptor + GOT window already match this layout.
        * Code image and metadata descriptor ride one chain (one
          doorbell, selective signaling); torn-write semantics per WR
          are unchanged because the RNIC still lands MTU chunks.
        * The commit is a direct CAS with no separate ordering fence:
          the chain's signaled completion *is* the ordering point (RC
          ordering retires every chained WR before the CAS issues on
          the same QP), so the serial path's
          :data:`repro.params.RDX_TX_COMMIT_US` wait disappears.  The
          completion still guarantees nothing about remote *CPU*
          visibility -- that remains ``rdx_cc_event``'s job below.
        * With ``fenced`` the epoch read is elided: the caller fenced
          this same transaction moments ago (broadcast fences when the
          bubble rises), and fencing is advisory at op start either
          way -- the window between fence and CAS exists at any grain.
        """
        if not fenced:
            yield from self.check_fence()

        mark = self.sim.now
        yield from (
            self.dispatch_cpu or self.control_plane.host.cpu
        ).run(params.RDX_DISPATCH_FAST_US)
        if not self._last_link_cached:
            yield self.sim.timeout(params.RDX_STUB_RENDEZVOUS_US)
        report.dispatch_us = self.sim.now - mark

        owner_name = self._hook_owner.get(hook_name)
        existing = self.deployed.get(owner_name) if owner_name else None
        hook_addr = self._hook_addr(hook_name)
        expected = existing.code_addr if existing else 0
        code_addr = self.code_allocator.alloc(len(linked.code), align=64)
        slot = self._pick_metadata_slot()
        block = MetadataBlock(
            state=SLOT_LIVE,
            prog_id=program.prog_id,
            insn_cnt=len(program.insns),
            ref_count=1,
            code_addr=code_addr,
            code_len=len(linked.code),
            hook_slot=self.manifest.hook_layout.get(hook_name, -1),
            version=(existing.version + 1) if existing else 1,
            tag=program.tag().encode()[:16],
            name=program.name,
        )

        txn = (
            hb.txn_note(publishes=(code_addr, len(linked.code)))
            if params.RDX_HB_CHECK
            else None
        )
        body = {"txn": txn["txn"]} if txn else None
        mark = self.sim.now
        try:
            yield from self.sync.write_batch(
                [
                    (code_addr, linked.code),
                    (self.manifest.metadata_addr + slot * 256, block.encode()),
                ],
                note=body,
            )
        except BaseException:
            self._unwind_failed_deploy(code_addr, slot)
            raise
        report.write_us = self.sim.now - mark

        mark = self.sim.now
        prior = yield from self.sync.cas(hook_addr, expected, code_addr, note=txn)
        if prior != expected:
            self._unwind_failed_deploy(code_addr, slot)
            raise DeployError(
                f"{program.name}: hook {hook_name!r} CAS expected "
                f"{expected:#x}, found {prior:#x} (concurrent update?)"
            )
        # Semantic parity with the serial path: this was a
        # transactional install, just with the fence folded into the
        # chain completion.
        self.sync.tx_count += 1
        report.commit_us = self.sim.now - mark

        if flush_hook:
            mark = self.sim.now
            yield from self.sync.cc_event(hook_addr, 8)
            report.cc_us = self.sim.now - mark

        self._bookkeep(
            program, hook_name, code_addr, len(linked.code), slot,
            block.version, existing, retain_history, report,
            image=linked.code,
        )
        return report

    def _delta_plan(
        self, linked: JitBinary, hook_name: str
    ) -> Optional[_DeltaPlan]:
        """Decide whether this deploy can ship as a delta.

        Eligibility is conservative: the hook must already be owned by
        a record carrying a registered baseline whose layout
        fingerprint matches the one :meth:`link_code` just produced,
        the image size must be unchanged, and the diff must be under
        break-even.  Anything else returns None (with the reason
        counted in ``rdx.delta.fallback``) and the full pipelined body
        runs instead -- correctness never depends on delta eligibility.
        """

        def fallback(reason: str) -> None:
            self.obs.counter("rdx.delta.fallback", reason=reason).inc()
            return None

        owner_name = self._hook_owner.get(hook_name)
        existing = self.deployed.get(owner_name) if owner_name else None
        if existing is None:
            return fallback("first-deploy")
        if existing.baseline_addr is None or existing.baseline_image is None:
            return fallback("no-baseline")
        key = self._last_link_key
        if key is None or existing.layout is None or existing.layout != key[1:]:
            # The link cache could not certify the (arch, GOT
            # fingerprint) layout is unchanged: resolved addresses may
            # have moved, so a byte diff would be meaningless.
            return fallback("layout-changed")
        if len(linked.code) != len(existing.baseline_image):
            return fallback("size-changed")
        ranges = _delta_ranges(existing.baseline_image, linked.code)
        if len(ranges) > params.RDX_DELTA_MAX_CHUNKS:
            return fallback("past-break-even")
        if sum(len(payload) for _, payload in ranges) >= len(linked.code):
            return fallback("no-savings")
        return _DeltaPlan(
            existing=existing,
            target_addr=existing.baseline_addr,
            ranges=ranges,
            base_version=existing.baseline_version,
        )

    def _deploy_body_delta(
        self,
        program: BpfProgram,
        linked: JitBinary,
        hook_name: str,
        flush_hook: bool,
        retain_history: bool,
        report: DeployReport,
        fenced: bool = False,
    ) -> Generator:
        """Delta deploy: ship only the chunks that differ from the baseline.

        The target already holds a resident, non-live extent whose
        exact bytes the control plane knows -- the *baseline*, the
        image superseded one generation ago and kept alive by
        :meth:`_bookkeep`.  When the link cache certifies the layout is
        unchanged, the new image differs from that baseline only where
        the program text changed, so the body diffs at MTU-chunk
        granularity, trims each dirty chunk to its cache-line-aligned
        dirty span, and sends just those spans plus the fresh metadata
        descriptor as one WR chain *into the baseline extent*.  The
        commit CAS then flips the hook from the live extent to the
        rewritten baseline; the two extents ping-pong roles on every
        subsequent delta.

        Falls back to :meth:`_deploy_body_fast` (reason counted in
        ``rdx.delta.fallback``) whenever the baseline is unavailable,
        the layout fingerprint moved, or the diff is past break-even
        (:data:`repro.params.RDX_DELTA_MAX_CHUNKS`).
        """
        plan = self._delta_plan(linked, hook_name)
        if plan is None:
            report = yield from self._deploy_body_fast(
                program, linked, hook_name, flush_hook, retain_history,
                report, fenced,
            )
            return report

        if not fenced:
            yield from self.check_fence()

        mark = self.sim.now
        yield from (
            self.dispatch_cpu or self.control_plane.host.cpu
        ).run(params.RDX_DISPATCH_FAST_US)
        if not self._last_link_cached:
            yield self.sim.timeout(params.RDX_STUB_RENDEZVOUS_US)
        report.dispatch_us = self.sim.now - mark

        existing = plan.existing
        target_addr = plan.target_addr
        hook_addr = self._hook_addr(hook_name)
        slot = self._pick_metadata_slot()
        block = MetadataBlock(
            state=SLOT_LIVE,
            prog_id=program.prog_id,
            insn_cnt=len(program.insns),
            ref_count=1,
            code_addr=target_addr,
            code_len=len(linked.code),
            hook_slot=self.manifest.hook_layout.get(hook_name, -1),
            version=existing.version + 1,
            tag=program.tag().encode()[:16],
            name=program.name,
        )

        # The txn publishes the whole extent the flipped pointer makes
        # reachable, not just the dirty spans: the checker holds the
        # commit to the same standard as a full-image install.
        txn = (
            hb.txn_note(publishes=(target_addr, len(linked.code)))
            if params.RDX_HB_CHECK
            else None
        )
        body = {"txn": txn["txn"]} if txn else None
        ops = [
            (target_addr + offset, payload)
            for offset, payload in plan.ranges
        ]
        ops.append((self.manifest.metadata_addr + slot * 256, block.encode()))
        mark = self.sim.now
        try:
            yield from self.sync.write_batch(ops, note=body)
        except BaseException:
            self._unwind_failed_delta(existing, slot)
            raise
        report.write_us = self.sim.now - mark

        mark = self.sim.now
        prior = yield from self.sync.cas(
            hook_addr, existing.code_addr, target_addr, note=txn
        )
        if prior != existing.code_addr:
            self._unwind_failed_delta(existing, slot)
            raise DeployError(
                f"{program.name}: hook {hook_name!r} CAS expected "
                f"{existing.code_addr:#x}, found {prior:#x} "
                "(concurrent update?)"
            )
        self.sync.tx_count += 1
        report.commit_us = self.sim.now - mark

        if flush_hook:
            mark = self.sim.now
            # The reused extent was live (and executed) two generations
            # ago, so the target CPU may still cache its old lines, and
            # DMA writes leave those snapshots stale.  Flush the dirty
            # spans *before* the hook line: the code must be coherent
            # before the pointer that reaches it is.
            for offset, payload in plan.ranges:
                yield from self.sync.cc_event(
                    target_addr + offset, len(payload)
                )
            yield from self.sync.cc_event(hook_addr, 8)
            report.cc_us = self.sim.now - mark

        report.mode = "delta"
        report.delta_chunks = len(plan.ranges)
        report.bytes_moved = (
            sum(len(payload) for _, payload in plan.ranges) + 256
        )
        report.delta_base_version = plan.base_version
        self._bookkeep(
            program, hook_name, target_addr, len(linked.code), slot,
            block.version, existing, retain_history, report,
            image=linked.code,
        )
        return report

    def _unwind_failed_delta(
        self, existing: DeployedProgram, slot: int
    ) -> None:
        """Roll back a delta body that failed before its commit.

        The baseline extent may now hold a half-rewritten image, so it
        can never serve as a diff base (or rollback target) again:
        drop the registration and retire the extent.  Nothing points
        at it -- the hook never flipped -- so the deferred free is
        purely conservative.
        """
        self._metadata_used.discard(slot)
        addr = existing.baseline_addr
        if addr is not None:
            self._retired.append(addr)
            existing.history = [a for a in existing.history if a != addr]
        existing.baseline_addr = None
        existing.baseline_image = None
        existing.baseline_version = 0

    def _unwind_failed_deploy(self, code_addr: int, slot: int) -> None:
        """Release local resources a failed deploy body had claimed.

        Both the code pages *and* the metadata slot go back -- leaking
        the slot on a CAS conflict used to exhaust the descriptor
        array under repeated contention.
        """
        self.code_allocator.free(code_addr)
        self._metadata_used.discard(slot)

    def _bookkeep(
        self,
        program: BpfProgram,
        hook_name: str,
        code_addr: int,
        code_len: int,
        slot: int,
        version: int,
        existing: Optional[DeployedProgram],
        retain_history: bool,
        report: DeployReport,
        image: Optional[bytes] = None,
    ) -> None:
        """Shared post-commit record keeping for all deploy bodies."""
        # This deploy's commit CAS (and hook flush) is now visible, so
        # extents retired by the *previous* generation have outlived
        # every exec that could still have been decoding them: the
        # deferred frees drain here, never at retire time.
        self._drain_retired()
        record = DeployedProgram(
            program=program,
            hook_name=hook_name,
            code_addr=code_addr,
            code_len=code_len,
            metadata_slot=slot,
            version=version,
            image=image,
            layout=self._last_link_key[1:] if self._last_link_key else None,
        )
        if existing:
            # The superseded descriptor slot is reusable either way.
            self._metadata_used.discard(existing.metadata_slot)
            if report.mode == "delta":
                # Ping-pong: the new image went *into* the old baseline
                # extent, and the superseded live extent becomes the
                # next baseline.  The consumed baseline leaves the
                # rollback history -- it holds live bytes now -- so
                # delta chains cap rollback depth at one generation.
                record.history = [
                    addr for addr in existing.history if addr != code_addr
                ]
                if retain_history:
                    record.history.append(existing.code_addr)
                record.baseline_addr = existing.code_addr
                record.baseline_image = existing.image
                record.baseline_version = existing.version
            else:
                if retain_history:
                    record.history = existing.history + [existing.code_addr]
                else:
                    record.history = list(existing.history)
                if existing.image is not None:
                    # The superseded extent stays resident as the delta
                    # baseline: its exact bytes are known, so the next
                    # deploy of this layout can ship only the changed
                    # chunks.
                    record.baseline_addr = existing.code_addr
                    record.baseline_image = existing.image
                    record.baseline_version = existing.version
                elif not retain_history:
                    # No known bytes and no history reference: the
                    # extent is garbage, but in-flight execs may still
                    # be reading it.  Defer the free until the next
                    # commit CAS is visible -- freeing it here (the old
                    # behaviour) destroyed the extent under the data
                    # path.
                    self._retired.append(existing.code_addr)
            # The previous baseline is superseded unless something
            # still references it (the new baseline, the live extent,
            # or a rollback target).
            old_baseline = existing.baseline_addr
            if (
                old_baseline is not None
                and old_baseline != record.baseline_addr
                and old_baseline != record.code_addr
                and old_baseline not in record.history
            ):
                self._retired.append(old_baseline)
            if existing.program.name != program.name:
                del self.deployed[existing.program.name]
        self.deployed[program.name] = record
        self._hook_owner[hook_name] = program.name
        report.total_us = self.sim.now - report.started_us
        report.code_addr = code_addr
        if report.mode != "delta":
            report.bytes_moved = code_len + 256
        self.reports.append(report)
        self.control_plane.trace.record(
            self.sim.now,
            "rdx.deploy.done",
            program=program.name,
            target=self.sandbox.name,
            total_us=report.total_us,
        )

    def _drain_retired(self) -> None:
        """Free extents whose deferred-free window has closed."""
        for addr in self._retired:
            if self.code_allocator.size_of(addr) is not None:
                self.code_allocator.free(addr)
        self._retired.clear()

    def _observe_deploy(self, report: DeployReport, code_bytes: int) -> None:
        """Feed one successful deploy into the metrics registry."""
        self.obs.counter("rdx.deploy.count").inc()
        # What actually crossed the wire: the full image + 256-byte
        # metadata descriptor, or just a delta's trimmed dirty spans.
        self.obs.counter("rdx.deploy.bytes_written").inc(
            report.bytes_moved or (code_bytes + 256)
        )
        if report.mode == "delta":
            self.obs.counter("rdx.deploy.delta").inc()
            self.obs.histogram("rdx.delta.chunks").observe(
                report.delta_chunks
            )
            self.obs.histogram("rdx.delta.bytes_moved").observe(
                report.bytes_moved
            )
        for phase, value in report.phases().items():
            if phase == "link":
                continue  # linking is measured by its own rdx.link span
            self.obs.histogram(f"rdx.deploy.{phase}_us").observe(value)
        # Install-visible latency, exported per target and per tenant:
        # total_us ends after the cc flush, i.e. when a data-path read
        # can first observe the new pointer.
        self.obs.histogram(
            "rdx.deploy.install_visible_us",
            target=target_label(
                self.sandbox.name, self.control_plane.shard
            ),
            tenant=self.tenant,
        ).observe(report.total_us)
        self.obs.histogram(
            "rdx.tenant.install_visible_us", tenant=self.tenant
        ).observe(report.total_us)

    def _pick_metadata_slot(self) -> int:
        for index in range(self.manifest.metadata_slots):
            if index not in self._metadata_used:
                self._metadata_used.add(index)
                return index
        raise DeployError(f"{self.sandbox.name}: metadata array full")

    def _hook_addr(self, hook_name: str) -> int:
        try:
            slot = self.manifest.hook_layout[hook_name]
        except KeyError:
            raise DeployError(
                f"{self.sandbox.name} has no hook {hook_name!r}"
            ) from None
        return self.manifest.hook_table_addr + slot * 8

    # -- detach / rollback support ----------------------------------------------

    def detach(self, program_name: str, record_intent: bool = True) -> Generator:
        """Remove the extension: hook -> 0, metadata -> detached."""
        record = self._record(program_name)
        yield from self.check_fence()
        txn = None
        if record_intent:
            plane = self.control_plane
            txn = plane._mint_txn("detach")
            plane.journal.begin(
                txn, "detach", plane.epoch,
                target=self.sandbox.name, name=program_name,
            )
        try:
            yield from self._detach_body(program_name, record)
        except BaseException as err:
            if txn is not None and not self.control_plane.crashed:
                self.control_plane.journal.abort(txn, reason=str(err))
            raise
        if txn is not None:
            self.control_plane.journal.commit(
                txn, target=self.sandbox.name, name=program_name
            )

    def _detach_body(
        self, program_name: str, record: DeployedProgram
    ) -> Generator:
        hook_addr = self._hook_addr(record.hook_name)
        prior = yield from self.sync.tx(
            obj_addr=record.code_addr,
            obj_bytes=b"",
            qword_addr=hook_addr,
            new_qword=0,
            expect=record.code_addr,
        )
        if prior != record.code_addr:
            raise DeployError(
                f"detach of {program_name}: hook moved underneath us"
            )
        yield from self.sync.cc_event(hook_addr, 8)
        state_addr = self.manifest.metadata_addr + record.metadata_slot * 256
        yield from self.sync.write(
            state_addr, SLOT_DETACHED.to_bytes(4, "little")
        )
        self.code_allocator.free(record.code_addr)
        if (
            record.baseline_addr is not None
            and record.baseline_addr != record.code_addr
            and record.baseline_addr not in record.history
            and self.code_allocator.size_of(record.baseline_addr) is not None
        ):
            self.code_allocator.free(record.baseline_addr)
        self._metadata_used.discard(record.metadata_slot)
        if self._hook_owner.get(record.hook_name) == program_name:
            del self._hook_owner[record.hook_name]
        del self.deployed[program_name]

    def flip_to(self, program_name: str, code_addr: int) -> Generator:
        """Point the hook at an already-resident image (rollback path)."""
        record = self._record(program_name)
        hook_addr = self._hook_addr(record.hook_name)
        prior = yield from self.sync.tx(
            obj_addr=code_addr,
            obj_bytes=b"",
            qword_addr=hook_addr,
            new_qword=code_addr,
            expect=record.code_addr,
        )
        if prior != record.code_addr:
            raise DeployError(f"flip of {program_name}: concurrent update")
        yield from self.sync.cc_event(hook_addr, 8)
        record.history.append(record.code_addr)
        record.code_addr = code_addr
        record.version += 1
        # Rollback breaks the delta chain: the record no longer knows
        # the live extent's exact bytes, so the baseline pairing is
        # void.  The baseline extent stays resident while history (or
        # the hook itself) references it; otherwise it is retired.
        if (
            record.baseline_addr is not None
            and record.baseline_addr != record.code_addr
            and record.baseline_addr not in record.history
        ):
            self._retired.append(record.baseline_addr)
        record.image = None
        record.layout = None
        record.baseline_addr = None
        record.baseline_image = None
        record.baseline_version = 0

    def _record(self, program_name: str) -> DeployedProgram:
        record = self.deployed.get(program_name)
        if record is None:
            raise DeployError(f"{program_name!r} is not deployed")
        return record

    # -- recovery support (reconciler) -------------------------------------------

    def reset_after_reboot(self) -> None:
        """Forget all per-target records after the sandbox warm-rebooted.

        The target wiped its volatile control surface, so every record
        this handle holds describes unreachable bytes.  Allocators and
        the scratchpad mirror start over; the epoch drops to 0 so the
        next :meth:`stamp_epoch` re-fences the target.
        """
        manifest = self.manifest
        self.scratchpad = RemoteScratchpad(
            manifest.scratchpad_addr,
            manifest.scratchpad_bytes,
            manifest.meta_xstate_slots,
        )
        self.code_allocator = RegionAllocator(
            manifest.code_addr, manifest.code_bytes,
            label=f"{self.sandbox.name}.rcode",
        )
        self._metadata_used.clear()
        self.deployed.clear()
        self._hook_owner.clear()
        # Retired addresses and the last link key describe the wiped
        # address space -- both are meaningless now.
        self._retired.clear()
        self._last_link_key = None
        self.epoch = 0
        self.sync.hb_epoch = None  # unknown until the next stamp_epoch

    def adopt(
        self,
        program: BpfProgram,
        hook_name: str,
        slot: int,
        block: MetadataBlock,
        image: Optional[bytes] = None,
    ) -> DeployedProgram:
        """Adopt a live remote deployment into this handle's books.

        A restarted control plane's fresh CodeFlow starts with empty
        records while the target still runs images a previous
        incarnation deployed.  Adoption reconstructs the
        :class:`DeployedProgram` record -- reserving the code pages in
        place -- so ordinary deploy/detach CAS expectations line up
        with remote reality again.  ``image`` is the CRC-verified
        bytes the reconciler read back: recording them lets the first
        post-recovery full deploy register this extent as a delta
        baseline (the deploy itself still ships full -- the adopted
        record carries no layout fingerprint).
        """
        self.code_allocator.reserve(block.code_addr, block.code_len)
        self._metadata_used.add(slot)
        record = DeployedProgram(
            program=program,
            hook_name=hook_name,
            code_addr=block.code_addr,
            code_len=block.code_len,
            metadata_slot=slot,
            version=block.version,
            image=image,
        )
        self.deployed[program.name] = record
        if hook_name:
            self._hook_owner[hook_name] = program.name
        return record

    # -- rdx_deploy_xstate (§3.4) -------------------------------------------------

    def deploy_xstate(
        self,
        spec: XStateSpec,
        initial: Optional[BpfMap] = None,
        record_intent: bool = True,
    ) -> Generator:
        """Allocate + inject one XState; returns an :class:`XStateHandle`.

        Steps (paper §3.4): (1) allocate a chunk from the scratchpad,
        (2) write the self-describing header + initial image, (3) write
        the Meta-XState index entry, then flush so the data path can
        adopt the new state immediately.
        """
        from repro.core.journal import xstate_spec_detail

        yield from self.check_fence()
        txn = None
        if record_intent:
            plane = self.control_plane
            txn = plane._mint_txn("xstate")
            plane.journal.begin(
                txn, "xstate", plane.epoch,
                target=self.sandbox.name, spec=xstate_spec_detail(spec),
            )
        try:
            handle = yield from self._deploy_xstate_body(spec, initial)
        except BaseException as err:
            if txn is not None and not self.control_plane.crashed:
                self.control_plane.journal.abort(txn, reason=str(err))
            raise
        if txn is not None:
            # Placement rides along in the COMMIT record so a restarted
            # control plane can adopt the chunk where it already lives.
            placed = dict(xstate_spec_detail(spec))
            placed["meta_index"] = handle.meta_index
            placed["header_addr"] = handle.header_addr
            self.control_plane.journal.commit(
                txn, target=self.sandbox.name, spec=placed
            )
        return handle

    def _deploy_xstate_body(
        self, spec: XStateSpec, initial: Optional[BpfMap]
    ) -> Generator:
        handle = self.scratchpad.allocate(spec)
        if initial is None:
            initial = BpfMap(
                spec.map_type, spec.key_size, spec.value_size, spec.max_entries,
                name=spec.name,
            )
        image = initial.serialize()
        if len(image) != spec.data_bytes():
            self.scratchpad.release(handle)
            raise XStateError(
                f"{spec.name}: initial image is {len(image)} bytes, "
                f"spec wants {spec.data_bytes()}"
            )
        with self.obs.span(
            "rdx.xstate.deploy", xstate=spec.name, target=self.sandbox.name
        ):
            yield from self.sync.write(
                handle.header_addr, encode_xstate_header(spec) + image
            )
            meta_addr = self.scratchpad.meta_entry_addr(handle.meta_index)
            prior = yield from self.sync.tx(
                obj_addr=handle.header_addr,
                obj_bytes=b"",
                qword_addr=meta_addr,
                new_qword=handle.header_addr,
                expect=0,
            )
            if prior != 0:
                self.scratchpad.release(handle)
                raise XStateError(
                    f"{spec.name}: meta slot {handle.meta_index} already taken"
                )
            yield from self.sync.cc_event(
                handle.header_addr, params.XSTATE_HEADER_BYTES
            )
        self.obs.counter("rdx.xstate.bytes_written").inc(
            params.XSTATE_HEADER_BYTES + len(image)
        )
        return handle

    def destroy_xstate(
        self, handle: XStateHandle, record_intent: bool = True
    ) -> Generator:
        """Clear the meta entry and free the chunk."""
        if record_intent:
            plane = self.control_plane
            txn = plane._mint_txn("xstate_destroy")
            plane.journal.begin(
                txn, "xstate_destroy", plane.epoch,
                target=self.sandbox.name, name=handle.name,
            )
        yield from self._destroy_xstate_body(handle)
        if record_intent:
            plane.journal.commit(
                txn, target=self.sandbox.name, name=handle.name
            )

    def _destroy_xstate_body(self, handle: XStateHandle) -> Generator:
        meta_addr = self.scratchpad.meta_entry_addr(handle.meta_index)
        prior = yield from self.sync.cas(meta_addr, handle.header_addr, 0)
        if prior != handle.header_addr:
            raise XStateError(f"{handle.name}: meta entry changed underneath us")
        # Poison the header magic so stale pointers cannot re-adopt it.
        yield from self.sync.write(handle.header_addr, b"\x00")
        yield from self.sync.cc_event(handle.header_addr, params.XSTATE_HEADER_BYTES)
        self.scratchpad.release(handle)

    # -- XState access (inspector APIs) ---------------------------------------------

    def xstate_lookup(self, handle: XStateHandle, key: bytes) -> Generator:
        """Remote map lookup via one-sided READs (no target CPU)."""
        spec = handle.spec
        slot_bytes = spec.slot_bytes()
        image = yield from self.read_raw(handle.data_addr, spec.data_bytes())
        rebuilt = BpfMap.deserialize(
            image, spec.map_type, spec.key_size, spec.value_size,
            spec.max_entries, name=spec.name,
        )
        del slot_bytes
        return rebuilt.lookup(key)

    def xstate_update(
        self, handle: XStateHandle, key: bytes, value: bytes
    ) -> Generator:
        """Remote map update: locate the slot, then write it in place."""
        spec = handle.spec
        if len(key) != spec.key_size or len(value) != spec.value_size:
            raise XStateError(f"{handle.name}: bad key/value geometry")
        slot_bytes = spec.slot_bytes()
        image = yield from self.read_raw(handle.data_addr, spec.data_bytes())
        target_slot = None
        free_slot = None
        for index in range(spec.max_entries):
            chunk = image[index * slot_bytes : (index + 1) * slot_bytes]
            if chunk[0] and chunk[8 : 8 + spec.key_size] == key:
                target_slot = index
                break
            if not chunk[0] and free_slot is None:
                free_slot = index
        if target_slot is None:
            target_slot = free_slot
        if target_slot is None:
            raise XStateError(f"{handle.name}: map full")
        slot_addr = handle.data_addr + target_slot * slot_bytes
        payload = b"\x01" + bytes(7) + key + value
        yield from self.sync.write(slot_addr, payload)
        yield from self.sync.cc_event(slot_addr, len(payload))

    def read_raw(self, addr: int, length: int) -> Generator:
        """One-sided READ helper."""
        data = yield from self.sync.read(addr, length)
        return data
