"""Extension live migration for microsecond auto-scaling (paper §4).

Scaling out a pod means moving the application container *and* its
sidecar extensions.  Warm-pod systems move container state over RDMA
in microseconds, leaving extension reload (seconds, agent path) as the
bottleneck.  RDX migrates the extension instead: the already-compiled
image is re-linked for the destination, its XState is copied with
one-sided READs/WRITEs, and the destination hook is flipped -- no
recompilation, no destination CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import DeployError
from repro.core.codeflow import CodeFlow
from repro.core.xstate import XStateHandle, XStateSpec


@dataclass
class MigrationReport:
    """Timing of one extension migration."""

    program_name: str
    src: str
    dst: str
    started_us: float
    xstate_copied_us: float = 0.0
    deployed_us: float = 0.0
    total_us: float = 0.0
    xstate_bytes: int = 0


class MigrationManager:
    """Moves live extensions (code + XState) between sandboxes."""

    def __init__(self, control_plane):
        self.control_plane = control_plane
        self.sim = control_plane.sim
        self.migrations: list[MigrationReport] = []

    def migrate(
        self,
        src: CodeFlow,
        dst: CodeFlow,
        program_name: str,
        xstate: Optional[XStateHandle] = None,
    ) -> Generator:
        """Migrate ``program_name`` from ``src``'s target to ``dst``'s.

        When ``xstate`` is given, its live contents are snapshotted
        from the source and deployed to the destination *before* the
        code goes live, so the migrated extension resumes with current
        state.  Returns a :class:`MigrationReport`.
        """
        record = src.deployed.get(program_name)
        if record is None:
            raise DeployError(f"{program_name!r} not deployed on source")
        report = MigrationReport(
            program_name=program_name,
            src=src.sandbox.name,
            dst=dst.sandbox.name,
            started_us=self.sim.now,
        )

        if xstate is not None:
            snapshot = yield from src.read_raw(
                xstate.data_addr, xstate.spec.data_bytes()
            )
            report.xstate_bytes = len(snapshot)
            from repro.ebpf.maps import BpfMap

            live = BpfMap.deserialize(
                snapshot,
                xstate.spec.map_type,
                xstate.spec.key_size,
                xstate.spec.value_size,
                xstate.spec.max_entries,
                name=xstate.spec.name,
            )
            existing = dst.scratchpad.by_name(xstate.spec.name)
            if existing is None:
                yield from dst.deploy_xstate(xstate.spec, initial=live)
            else:
                yield from dst.sync.write(existing.data_addr, snapshot)
                yield from dst.sync.cc_event(existing.data_addr, len(snapshot))
        report.xstate_copied_us = self.sim.now - report.started_us

        # Re-link the cached binary for the destination and deploy.
        mark = self.sim.now
        yield from self.control_plane.inject(
            dst, record.program, record.hook_name
        )
        report.deployed_us = self.sim.now - mark
        report.total_us = self.sim.now - report.started_us
        self.migrations.append(report)
        return report
