"""Collective CodeFlow: transactional cluster-wide updates (paper §4).

``rdx_broadcast`` treats a group update as one distributed transaction
whose write set spans every target hook (inspired by RDMA distributed
transactions).  Consistency comes from **Big Bubble Update (BBU)**:

1. raise the *bubble flag* on every target (data paths buffer incoming
   requests instead of executing mixed logic),
2. deploy all extensions in parallel,
3. lower the flags in dependency order, releasing buffered requests.

Because RDX injection is microseconds, the bubble -- and therefore the
request buffer -- stays tiny; the same scheme under an agent baseline
would need to buffer ~rate x window requests (§2.2 Obs 2's 1M-request
example), which is the ablation ``bench_ablate_bbu`` quantifies.

The transaction has an **abort path**: every target's deploy leg runs
under its own deadline and collects its own outcome; if any leg fails
(deploy error, CRC-failed verify readback, crashed/partitioned target,
deadline expiry) the targets that *did* succeed are rolled back to
their prior image -- all-or-nothing visibility -- and
:class:`~repro.errors.BroadcastAborted` is raised *after* every
reachable bubble has been lowered.  ``allow_partial=True`` opts into
quorum mode instead: surviving targets keep the new logic and the
result is marked ``degraded``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro import params
from repro.hb import events as hb
from repro.errors import (
    BroadcastAborted,
    ConsistencyError,
    DeadlineExceeded,
    DeployError,
    HostUnreachable,
    RdmaError,
    ReproError,
    StaleEpochError,
)
from repro.ebpf.program import BpfProgram
from repro.mem.layout import pack_qword
from repro.obs import target_label
from repro.rdma.verbs import connect_qps, open_device
from repro.core.codeflow import CodeFlow
from repro.core.health import HealthDetector, TargetHealth
from repro.core.rollback import RollbackManager
from repro.core.sync import RemoteSync


@dataclass
class TargetOutcome:
    """What happened to one target during a broadcast."""

    target: str
    program: str
    ok: bool = False
    #: DeployReport when the leg succeeded.
    report: object = None
    error: str = ""
    error_kind: str = ""
    #: Abort-path disposition for a leg that had succeeded.
    rolled_back: bool = False
    detached: bool = False

    def fail(self, err: BaseException) -> None:
        self.ok = False
        self.error = str(err)
        self.error_kind = type(err).__name__


@dataclass
class BroadcastResult:
    """Timing + outcome of one collective update."""

    group_size: int
    started_us: float
    bubble_raised_us: float = 0.0
    deploys_done_us: float = 0.0
    bubble_lowered_us: float = 0.0
    #: The consistency-critical window during which requests buffer.
    bubble_window_us: float = 0.0
    reports: list = field(default_factory=list)
    #: Per-target dispositions, one per group member.
    outcomes: list[TargetOutcome] = field(default_factory=list)
    #: True when the transaction failed and succeeded legs were undone.
    aborted: bool = False
    #: True when ``allow_partial`` kept a partially-updated group live.
    degraded: bool = False
    #: Time spent undoing succeeded legs on the abort path.
    abort_us: float = 0.0

    @property
    def total_us(self) -> float:
        return self.bubble_lowered_us - self.started_us

    @property
    def failed_targets(self) -> list[TargetOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]


class CodeFlowGroup:
    """A set of CodeFlows updated as one transaction."""

    def __init__(self, codeflows: Sequence[CodeFlow]):
        if not codeflows:
            raise DeployError("empty CodeFlow group")
        self.codeflows = list(codeflows)
        self.sim = codeflows[0].sim
        self.control_plane = codeflows[0].control_plane
        #: Shard name this group's metrics aggregate under (empty for
        #: a plain unsharded plane; see :mod:`repro.obs.cardinality`).
        self.shard = getattr(self.control_plane, "shard", "")
        #: (parent sandbox, child sandbox) -> relay RemoteSync, built
        #: lazily the first time a tree broadcast routes that edge and
        #: reused across broadcasts (QP setup is one-time state, like
        #: the control plane's own QPs).
        self._relay_syncs: dict[tuple[str, str], RemoteSync] = {}
        #: target name -> image linked during the last Phase 0 -- the
        #: chained WR payload a tree relay forwards verbatim, so a
        #: relayed leg never touches the control plane's CPU or QPs.
        self._prelinked: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self.codeflows)

    # -- bubble control -------------------------------------------------------

    def _set_bubble(
        self, codeflow: CodeFlow, value: int, sync: Optional[RemoteSync] = None
    ) -> Generator:
        sync = sync or codeflow.sync
        addr = codeflow.sandbox.bubble_addr
        yield from sync.write(addr, pack_qword(value))
        yield from sync.cc_event(addr, 8)

    def _lower_bubble(
        self,
        codeflow: CodeFlow,
        flushes: list,
        sync: Optional[RemoteSync] = None,
    ) -> Generator:
        """Drop one bubble, pipelining the flush on the fast path.

        Raising a bubble must flush *synchronously* -- a data path
        reading a stale 0 mid-update is the consistency violation BBU
        exists to prevent.  Lowering is the benign direction: a stale
        "still raised" just buffers a few extra requests for ~2us.  So
        the pipelined path chains the lowering write and the cc_event
        doorbell into ONE WR chain (one doorbell, one completion) and
        lets the flush *effect* land asynchronously while the next
        target's lower goes out.  The serial path keeps the blocking
        write + flush pair.
        """
        sync = sync or codeflow.sync
        if not params.RDX_PIPELINED_DEPLOY:
            yield from self._set_bubble(codeflow, 0, sync=sync)
            return
        addr = codeflow.sandbox.bubble_addr
        doorbell = codeflow.sandbox.control_addr + 24  # OFF_DOORBELL
        yield from sync.write_batch(
            [(addr, pack_qword(0)), (doorbell, pack_qword(1))]
        )
        flushes.append(
            self.sim.spawn(
                self._flush_bubble(codeflow, addr, sync),
                name=f"bubble-flush:{codeflow.sandbox.name}",
            )
        )

    def _raise_bubble(
        self, codeflow: CodeFlow, sync: Optional[RemoteSync] = None
    ) -> Generator:
        """Raise one bubble with the flush doorbell *chained* into the
        raising write's WR list.

        Raising still flushes synchronously -- this generator does not
        return until the flush effect has landed, so no deploy write
        can overtake a half-raised bubble.  What the chain buys is WR
        accounting: the fire-and-forget doorbell ``cc_event`` posts
        would otherwise still be sitting in the control RNIC pipeline
        when the raise barrier completes -- N orphan doorbells
        draining capacity-at-a-time *ahead of the first deploy
        chains*, an O(N) serial term inside the very window this
        phase exists to shrink.  Chaining write+doorbell (one
        doorbell, one CQE) retires both before the barrier does.
        """
        sync = sync or codeflow.sync
        if not params.RDX_PIPELINED_DEPLOY:
            yield from self._set_bubble(codeflow, 1, sync=sync)
            return
        addr = codeflow.sandbox.bubble_addr
        doorbell = codeflow.sandbox.control_addr + 24  # OFF_DOORBELL
        yield from sync.write_batch(
            [(addr, pack_qword(1)), (doorbell, pack_qword(1))]
        )
        yield from self._flush_bubble(codeflow, addr, sync, waited=True)

    def _lower_leg(
        self,
        codeflow: CodeFlow,
        flushes: list,
        obs,
        sync: Optional[RemoteSync] = None,
    ) -> Generator:
        """One lowering, failure-isolated: a target whose lower fails
        (unreachable, flaky) is counted, never fatal -- and when the
        lowers run concurrently, never strands a sibling.  A *relayed*
        lower (``sync`` riding a tree parent's QP) that fails retries
        once directly from the control plane before being counted --
        a crashed relay must never leave its subtree buffering."""
        try:
            if sync is None:
                yield from self._lower_bubble(codeflow, flushes)
            else:
                yield from self._lower_bubble(codeflow, flushes, sync=sync)
        except ReproError:
            if sync is not None and sync is not codeflow.sync:
                self._relay_fallback(codeflow, "lower", obs)
                yield from self._lower_leg(codeflow, flushes, obs)
                return
            obs.counter(
                "rdx.broadcast.bubble_lower_failed",
                target=target_label(codeflow.sandbox.name, self.shard),
            ).inc()

    def _flush_bubble(
        self, codeflow: CodeFlow, addr: int, sync: RemoteSync,
        waited: bool = False,
    ) -> Generator:
        """The effect of an already-chained flush doorbell.

        The doorbell WR already landed with the bubble write; the
        event hook executes the flush ~RDX_CC_EVENT_US later.  The
        fault hook is still consulted so DROPPED_FLUSH faults bite
        this path exactly like the blocking one.  ``sync`` is the QP
        that posted the doorbell -- the codeflow's own, or a tree
        relay's -- so hb attribution follows the bytes.  ``waited``
        marks the flush as a QP ordering point for the hb graph: True
        on the raise path (the raise barrier blocks on this effect),
        False on the deferred lowering path, which must order nothing.
        """
        _, dropped, _ = sync._consult_hook("cc_event", addr, None)
        if params.RDX_HB_CHECK and not dropped:
            hb.emit(
                self.sim, "hb.flush.post",
                qp=sync.qp.qpn, node=sync.qp.rnic.host.name,
                target=codeflow.sandbox.host.name, addr=addr, length=8,
            )
        yield self.sim.timeout(params.RDX_CC_EVENT_US)
        if not dropped:
            codeflow.sandbox.host.cache.flush(addr, 8)
            sync.cc_count += 1
            if params.RDX_HB_CHECK:
                hb.emit(
                    self.sim, "hb.flush",
                    qp=sync.qp.qpn, node=sync.qp.rnic.host.name,
                    target=codeflow.sandbox.host.name, addr=addr, length=8,
                    waited=waited,
                )

    def _prepare_leg(
        self, codeflow: CodeFlow, program, span, errors: list
    ) -> Generator:
        """One concurrent Phase-0 prepare; collects instead of raising
        so sibling legs are never stranded as failed background
        processes (the first collected error aborts the broadcast)."""
        try:
            entry = yield from self.control_plane.prepare_for(
                codeflow, program, parent_span=span
            )
        except ReproError as err:
            errors.append(err)
            return
        try:
            # Pre-link while no bubble is up: warms the linked-image
            # cache so the in-window deploy leg skips relocation
            # rewriting *and* the stub rendezvous.  Best-effort -- a
            # link error here re-surfaces inside the leg, where the
            # per-target failure machinery owns it.
            linked = yield from codeflow.link_code(entry.binary, parent_span=span)
        except ReproError:
            pass
        else:
            # Stash the linked image for tree relays: a relayed leg
            # forwards exactly these bytes (the chained WR list) from
            # the parent sandbox, never re-linking on the control CPU.
            self._prelinked[codeflow.sandbox.name] = linked

    # -- rdx_broadcast -----------------------------------------------------------

    def broadcast(
        self,
        programs: Sequence[BpfProgram],
        hook_name: str,
        dependency_order: Optional[Sequence[int]] = None,
        use_bbu: bool = True,
        verify: bool = True,
        allow_partial: bool = False,
        deadline_us: Optional[float] = None,
        health: Optional[HealthDetector] = None,
        record_intent: bool = True,
        tenant: str = "",
        coordinator=None,
    ) -> Generator:
        """Deploy ``programs[i]`` to ``codeflows[i]`` transactionally.

        ``dependency_order`` lists group indices in the order bubbles
        must be lowered (callees before callers); default is reverse
        group order.  Programs must already be prepared (validated +
        compiled) or preparable; linking happens per target.

        ``verify`` reads every installed image back and checks its
        trailing CRC, so silent payload corruption (torn or bit-flipped
        writes) fails the leg instead of crashing the data path later.
        ``deadline_us`` bounds each target's leg (default
        :data:`repro.params.BROADCAST_TARGET_DEADLINE_US`); a crashed
        target exhausts its transport retries or hits the deadline,
        either way becoming a per-target failure.  On any failure the
        default is transactional abort (succeeded legs rolled back,
        :class:`~repro.errors.BroadcastAborted` raised after bubbles
        drop); ``allow_partial=True`` keeps surviving targets live and
        marks the result ``degraded``.

        With a ``health`` detector attached, targets whose lease is
        SUSPECT or DEAD fail their legs *immediately* -- no bubble
        rises on them and no per-leg deadline burns down waiting on a
        host the lease layer already knows is sick.  ``record_intent``
        journals the whole broadcast as one WAL transaction (INTEND
        before any bubble rises, COMMIT listing exactly the legs that
        kept the new logic).

        With :data:`repro.params.RDX_TREE_BROADCAST` set, the deploy
        and (unordered) lower phases run as a configurable-degree
        fan-out tree: already-updated sandboxes relay the chained WR
        list to their children, so the bubble window grows ~O(log N)
        instead of serializing N legs through the control RNIC.  A
        ``coordinator`` (see :class:`repro.core.shard.ShardCoordinator`)
        makes this group one shard of a larger cross-shard transaction:
        bubbles are held until every shard votes, and a sibling shard's
        failure aborts this shard's clean legs too.
        """
        if len(programs) != len(self.codeflows):
            raise DeployError(
                f"broadcast needs one program per target "
                f"({len(programs)} != {len(self.codeflows)})"
            )
        order = list(dependency_order or range(len(self.codeflows) - 1, -1, -1))
        if sorted(order) != list(range(len(self.codeflows))):
            raise ConsistencyError("dependency_order must permute the group")
        if deadline_us is None:
            deadline_us = params.BROADCAST_TARGET_DEADLINE_US

        plane = self.control_plane
        plane._check_alive()

        result = BroadcastResult(
            group_size=len(self.codeflows), started_us=self.sim.now
        )
        result.outcomes = [
            TargetOutcome(target=cf.sandbox.name, program=prog.name)
            for cf, prog in zip(self.codeflows, programs)
        ]

        txn = None
        if record_intent:
            legs = []
            for codeflow, program in zip(self.codeflows, programs):
                plane.journal.record_program(program)
                legs.append(
                    {
                        "target": codeflow.sandbox.name,
                        "hook": hook_name,
                        "name": program.name,
                        "tag": program.tag(),
                    }
                )
            txn = plane._mint_txn("broadcast")
            plane.journal.begin(
                txn, "broadcast", plane.epoch, hook=hook_name, legs=legs
            )
        try:
            result = yield from self._broadcast_body(
                programs, hook_name, order, dependency_order is not None,
                use_bbu, verify, allow_partial, deadline_us, health, result,
                txn, tenant, coordinator,
            )
        except BaseException as err:
            # A crashed incarnation records nothing: the dangling INTEND
            # is exactly what tells the reconciler this work may be
            # half-applied.
            if txn is not None and not plane.crashed:
                plane.journal.abort(txn, reason=str(err))
            raise
        if txn is not None:
            plane.journal.commit(
                txn,
                hook=hook_name,
                legs=[
                    leg
                    for leg, outcome in zip(legs, result.outcomes)
                    if outcome.ok
                ],
            )
        return result

    def _broadcast_body(
        self, programs, hook_name, order, ordered, use_bbu, verify,
        allow_partial, deadline_us, health, result, txn, tenant="",
        coordinator=None,
    ) -> Generator:
        plane = self.control_plane
        obs = self.control_plane.obs
        obs.counter("rdx.broadcast.count").inc()
        obs.counter("rdx.broadcast.targets").inc(len(self.codeflows))
        obs.histogram("rdx.broadcast.fanout").observe(len(self.codeflows))
        with obs.span(
            "rdx.broadcast", group_size=len(self.codeflows), bbu=use_bbu,
            tenant=tenant,
        ) as span:
            # Phase 0: make sure every program is validated + compiled
            # *before* any bubble rises -- the registry's "validate once,
            # deploy anywhere" keeps compilation off the consistency
            # window entirely.  On the pipelined path the legs run
            # concurrently on the control plane's multi-core CPU pool;
            # single-flight dedup in ``prepare`` collapses simultaneous
            # misses on one key to a single validate+JIT.
            if params.RDX_PIPELINED_DEPLOY:
                prep_errors: list[BaseException] = []
                preps = [
                    self.sim.spawn(
                        self._prepare_leg(codeflow, program, span, prep_errors),
                        name=f"prepare:{codeflow.sandbox.name}",
                    )
                    for program, codeflow in zip(programs, self.codeflows)
                ]
                if preps:
                    yield self.sim.all_of(preps)
                if prep_errors:
                    raise prep_errors[0]
            else:
                for program, codeflow in zip(programs, self.codeflows):
                    yield from self.control_plane.prepare_for(
                        codeflow, program, parent_span=span
                    )
            if txn is not None:
                plane.journal.phase(txn, "prepared")

            # Phase 0.5: graceful degradation.  Targets whose lease is
            # not ALIVE fail here, for free -- no per-leg timeout is
            # ever paid for a host the detector already suspects.
            # Lease state is local, so this phase costs zero time.
            for codeflow, outcome in zip(self.codeflows, result.outcomes):
                lease = health.leases.get(outcome.target) if health else None
                if lease is not None and lease.health is not TargetHealth.ALIVE:
                    outcome.fail(
                        HostUnreachable(
                            f"{outcome.target}: lease is {lease.health.value}"
                        )
                    )
                    obs.counter(
                        "rdx.broadcast.lease_skips",
                        target=target_label(outcome.target, self.shard),
                    ).inc()

            # Phase 1: raise every bubble in parallel.  A target whose
            # bubble cannot rise (crashed, partitioned) fails its leg
            # here and is skipped by phase 2.
            if use_bbu:
                raises = [
                    self.sim.spawn(
                        self._guarded_bubble(cf, outcome, obs),
                        name=f"bubble+{i}",
                    )
                    for i, (cf, outcome) in enumerate(
                        zip(self.codeflows, result.outcomes)
                    )
                    if not outcome.error
                ]
                if raises:
                    yield self.sim.all_of(raises)
            result.bubble_raised_us = self.sim.now
            if txn is not None:
                plane.journal.phase(txn, "bubbled")

            # Phases 2-3 are exception-safe: whatever happens during
            # the deploy fan-out, every raised bubble is lowered before
            # an error escapes.  A bubble left raised would buffer the
            # target's requests forever -- the §2.2 agent-lockout
            # pathology BBU exists to avoid.
            try:
                active = [
                    index
                    for index, outcome in enumerate(result.outcomes)
                    if not outcome.error
                ]
                tree = (
                    params.RDX_TREE_BROADCAST
                    and params.RDX_PIPELINED_DEPLOY
                    and len(active) > 1
                )
                if tree:
                    # Fan-out tree: the control plane seeds the first
                    # ``degree`` targets; each updated sandbox then
                    # relays the chained WR list to its children, so
                    # depth -- and the bubble window -- grows with
                    # log(N) instead of N/pipeline.
                    ready = [self.sim.event() for _ in active]
                    for pos in range(
                        min(max(1, params.RDX_TREE_DEGREE), len(active))
                    ):
                        ready[pos].succeed((None, ""))
                    deploys = [
                        self.sim.spawn(
                            self._tree_leg(
                                pos, active, ready, programs, result,
                                hook_name, span, verify, deadline_us, obs,
                                fenced=use_bbu,
                            ),
                            name=f"deploy:{result.outcomes[active[pos]].target}",
                        )
                        for pos in range(len(active))
                    ]
                else:
                    deploys = [
                        self.sim.spawn(
                            self._target_leg(
                                cf, prog, outcome, hook_name, span, verify,
                                deadline_us, obs, fenced=use_bbu,
                            ),
                            name=f"deploy:{outcome.target}",
                        )
                        for cf, prog, outcome in zip(
                            self.codeflows, programs, result.outcomes
                        )
                        if not outcome.error
                    ]
                if deploys:
                    yield self.sim.all_of(deploys)
                result.deploys_done_us = self.sim.now
                if txn is not None:
                    plane.journal.phase(txn, "deployed")
                result.reports = [
                    outcome.report
                    for outcome in result.outcomes
                    if outcome.report is not None
                ]

                failures = result.failed_targets
                if coordinator is not None:
                    # Cross-shard 2PC: report this shard's tally and
                    # hold every bubble until the coordinator's
                    # verdict.  All-or-nothing must span shards -- a
                    # shard whose legs are all clean still rolls back
                    # when a sibling shard failed.
                    decision = yield from coordinator.vote(
                        self.shard or "shard0",
                        ok=[o.target for o in result.outcomes if o.ok],
                        failed=[o.target for o in failures],
                    )
                    if txn is not None:
                        plane.journal.phase(txn, f"decided-{decision}")
                    if decision == "abort":
                        yield from self._abort(programs, result, obs)
                    elif failures:
                        result.degraded = True
                        obs.counter("rdx.broadcast.degraded").inc()
                elif failures:
                    survivors = [o for o in result.outcomes if o.ok]
                    if allow_partial and survivors:
                        result.degraded = True
                        obs.counter("rdx.broadcast.degraded").inc()
                    else:
                        yield from self._abort(programs, result, obs)
            finally:
                # Phase 3: lower bubbles in dependency order
                # (sequential: a caller's bubble only drops once its
                # callees run new logic).  Runs on the failure path
                # too, so no reachable target is left buffering; a
                # crashed target's lower is best-effort and counted.
                # A crashed *control plane* runs no cleanup at all --
                # dead processes do not lower bubbles; the raised flags
                # it strands are the reconciler's to repair.
                if use_bbu and not plane.crashed:
                    flushes = []
                    lowerable = [
                        index
                        for index in order
                        # A fenced leg never raised its bubble, and a
                        # stale writer has no business lowering the
                        # successor's.
                        if result.outcomes[index].error_kind
                        != "StaleEpochError"
                    ]
                    if params.RDX_PIPELINED_DEPLOY and not ordered:
                        # The caller declared no dependencies, so no
                        # ordering constrains the lowers: drop every
                        # bubble concurrently.  An explicit
                        # dependency_order always lowers sequentially
                        # (a caller's bubble only drops once its
                        # callees confirm new logic).
                        if (
                            params.RDX_TREE_BROADCAST
                            and len(lowerable) > 1
                        ):
                            # Tree-relayed lowers: linear lowers
                            # through the control RNIC would hand the
                            # window right back its O(N) term.
                            yield from self._tree_lowers(
                                lowerable, flushes, obs
                            )
                        else:
                            lowers = [
                                self.sim.spawn(
                                    self._lower_leg(
                                        self.codeflows[index], flushes, obs
                                    ),
                                    name=(
                                        f"lower:"
                                        f"{result.outcomes[index].target}"
                                    ),
                                )
                                for index in lowerable
                            ]
                            if lowers:
                                yield self.sim.all_of(lowers)
                    else:
                        for index in lowerable:
                            yield from self._lower_leg(
                                self.codeflows[index], flushes, obs
                            )
                    if flushes:
                        # The trailing flushes overlap the lowering
                        # writes; only the last target's ~2us flush can
                        # extend the window past its lowering write.
                        yield self.sim.all_of(flushes)
        result.bubble_lowered_us = self.sim.now
        result.bubble_window_us = result.bubble_lowered_us - result.bubble_raised_us
        # The window is only known after the span closed; stamp it onto
        # the finished span so trace reconstruction can report it.
        span.attrs["bubble_window_us"] = result.bubble_window_us
        # BBU buffering cost proxy: how long every target held requests.
        obs.histogram("rdx.broadcast.bubble_window_us").observe(
            result.bubble_window_us
        )
        if result.aborted:
            failures = result.failed_targets
            if failures:
                first = failures[0]
                detail = (
                    f"(first: {first.target}: "
                    f"{first.error_kind}: {first.error})"
                )
            else:
                # Every local leg was clean; the coordinator aborted
                # on a sibling shard's behalf.
                detail = "(cross-shard abort: a sibling shard failed)"
            raise BroadcastAborted(
                f"broadcast aborted: {len(failures)}/{result.group_size} "
                f"targets failed {detail}",
                result=result,
            )
        return result

    # -- per-target legs ------------------------------------------------------

    def _guarded_bubble(self, codeflow, outcome, obs) -> Generator:
        """Fence, then raise: an 8-byte epoch read precedes the bubble
        write so a stale control plane never raises a bubble on (let
        alone deploys to) a successor's target.  Fence failures are
        per-leg failures, feeding the normal abort/partial machinery;
        the no-BBU path is fenced by ``_deploy_body`` instead."""
        try:
            yield from codeflow.check_fence()
            yield from self._raise_bubble(codeflow)
        except ReproError as err:
            outcome.fail(err)
            obs.counter(
                "rdx.broadcast.target_failures", kind=type(err).__name__
            ).inc()

    def _target_leg(
        self, codeflow, program, outcome, hook_name, span, verify,
        deadline_us, obs, fenced=False,
    ) -> Generator:
        """One target's deploy under a deadline; never raises."""
        try:
            inner = self.sim.spawn(
                self._deploy_target(
                    codeflow, program, hook_name, span, verify, fenced
                ),
                name=f"inject:{outcome.target}",
            )
            timer = self.sim.timeout(deadline_us)
            yield self.sim.any_of([inner, timer])
            if not inner.triggered:
                inner.interrupt("broadcast deadline expired")
                raise DeadlineExceeded(
                    f"{outcome.target}: deploy leg exceeded {deadline_us}us"
                )
            outcome.report = inner.value
            outcome.ok = True
        except ReproError as err:
            outcome.fail(err)
            obs.counter(
                "rdx.broadcast.target_failures", kind=type(err).__name__
            ).inc()

    def _deploy_target(
        self, codeflow, program, hook_name, span, verify, fenced=False,
        relay_from=None,
    ) -> Generator:
        obs = self.control_plane.obs
        relay_name = relay_from.sandbox.name if relay_from is not None else ""
        with obs.span(
            "rdx.broadcast.target", parent=span,
            target=codeflow.sandbox.name, program=program.name,
            relay=relay_name,
        ) as child:
            report = None
            if relay_from is not None:
                linked = self._prelinked.get(codeflow.sandbox.name)
                if linked is None:
                    # Phase 0 never produced an image to forward (link
                    # error re-surfacing); only the control plane can
                    # serve this leg.
                    self._relay_fallback(codeflow, "no-prelink", obs)
                elif not relay_from.sandbox.host.crashed:
                    try:
                        report = yield from self._relay_deploy(
                            relay_from, codeflow, program, linked,
                            hook_name, child, verify,
                        )
                    except RdmaError as err:
                        # The relay *path* is broken (crashed parent
                        # host, dead link): direct delivery from the
                        # shard still owes this target its update.
                        # Deploy-semantics failures (CAS conflict,
                        # CRC-failed verify, stale epoch) propagate --
                        # they would fail identically on any path.
                        self._relay_fallback(
                            codeflow, type(err).__name__, obs
                        )
                else:
                    self._relay_fallback(codeflow, "relay-crashed", obs)
            if report is None:
                linked = (
                    self._prelinked.get(codeflow.sandbox.name)
                    if params.RDX_TREE_BROADCAST
                    else None
                )
                if linked is not None:
                    # Tree mode, direct leg (root or relay fallback):
                    # deploy the Phase-0 image as-is.  Re-running
                    # ``inject`` here would repeat validate/JIT/link
                    # *inside* the bubble window whenever the prepare
                    # caches overflow (N > cache capacity) -- the
                    # window must only move bytes.
                    self.control_plane._check_alive()
                    if not fenced:
                        yield from codeflow.check_fence()
                    report = yield from codeflow.deploy_prog(
                        program, linked, hook_name, parent_span=child,
                        fenced=True,
                    )
                else:
                    report = yield from self.control_plane.inject(
                        codeflow, program, hook_name, parent_span=child,
                        record_intent=False,  # broadcast txn owns the WAL entry
                        fenced=fenced,  # _guarded_bubble fenced this leg already
                    )
                if verify:
                    try:
                        yield from self._verify_image(codeflow, program)
                    except ConsistencyError:
                        # The hook flip already committed onto a corrupt
                        # image -- undo *this* target immediately (the
                        # abort path only reverts legs that succeeded).
                        yield from self._undo(codeflow, program)
                        raise
            # Delta eligibility is decided per target: each leg holds
            # its own baseline (or none -- fresh targets, post-reboot
            # targets, and diverged layouts all fall back to full), so
            # one broadcast routinely mixes both modes.
            obs.counter(
                "rdx.broadcast.legs",
                mode=report.mode,
                target=target_label(codeflow.sandbox.name, self.shard),
            ).inc()
            child.attrs["mode"] = report.mode
        return report

    # -- tree fan-out (rack scale) --------------------------------------------

    def _tree_children(self, pos: int, size: int) -> range:
        """Positions relayed by tree position ``pos``.

        The tree is the d-ary forest over the active-leg list: the
        first ``degree`` positions are roots (seeded directly by the
        control plane), and position ``p`` relays to positions
        ``[(p+1)*d, (p+2)*d)`` -- depth ceil(log_d N) with every
        parent fanning out to at most ``d`` children, which is exactly
        what one sandbox host's RNIC pipeline absorbs in parallel.
        """
        degree = max(1, params.RDX_TREE_DEGREE)
        first = (pos + 1) * degree
        return range(first, min(first + degree, size))

    def _tree_leg(
        self, pos, active, ready, programs, result, hook_name, span,
        verify, deadline_us, obs, fenced=False,
    ) -> Generator:
        """One tree node: wait for a parent, deploy, relay to children.

        ``ready[pos]`` fires with ``(parent_codeflow, fallback_reason)``
        -- parent None means direct delivery from the control plane
        (roots, or children of a leg that failed mid-fanout: a crashed
        relay's whole subtree falls back to the shard rather than
        being stranded).  The per-leg deadline starts when the leg is
        unblocked, so tree depth never eats into a leg's budget.
        """
        index = active[pos]
        codeflow = self.codeflows[index]
        outcome = result.outcomes[index]
        program = programs[index]
        parent_cf, fallback_reason = yield ready[pos]
        if fallback_reason:
            self._relay_fallback(codeflow, fallback_reason, obs)
        try:
            inner = self.sim.spawn(
                self._deploy_target(
                    codeflow, program, hook_name, span, verify, fenced,
                    relay_from=parent_cf,
                ),
                name=f"inject:{outcome.target}",
            )
            timer = self.sim.timeout(deadline_us)
            yield self.sim.any_of([inner, timer])
            if not inner.triggered:
                inner.interrupt("broadcast deadline expired")
                raise DeadlineExceeded(
                    f"{outcome.target}: deploy leg exceeded {deadline_us}us"
                )
            outcome.report = inner.value
            outcome.ok = True
        except ReproError as err:
            outcome.fail(err)
            obs.counter(
                "rdx.broadcast.target_failures", kind=type(err).__name__
            ).inc()
        finally:
            # Unblock the subtree either way: children relay through
            # this target when its image committed, and fall back to
            # the control plane when it did not.
            relay = codeflow if outcome.ok else None
            reason = "" if outcome.ok else "parent-failed"
            for child in self._tree_children(pos, len(active)):
                ready[child].succeed((relay, reason))

    def _tree_lowers(self, lowerable, flushes, obs) -> Generator:
        """Drop bubbles down the same-shaped tree the deploys used.

        Each position's lowering chain rides its tree parent's QP
        (relay syncs are already warm from the deploy phase); roots
        lower directly from the control plane.  Failure isolation per
        leg is unchanged -- and a failed *relayed* lower retries
        directly before being counted.
        """
        ready = [self.sim.event() for _ in lowerable]
        for pos in range(min(max(1, params.RDX_TREE_DEGREE), len(lowerable))):
            ready[pos].succeed(None)
        legs = [
            self.sim.spawn(
                self._tree_lower_leg(pos, lowerable, ready, flushes, obs),
                name=f"lower:{self.codeflows[lowerable[pos]].sandbox.name}",
            )
            for pos in range(len(lowerable))
        ]
        if legs:
            yield self.sim.all_of(legs)

    def _tree_lower_leg(self, pos, lowerable, ready, flushes, obs) -> Generator:
        codeflow = self.codeflows[lowerable[pos]]
        parent_cf = yield ready[pos]
        sync = None
        if parent_cf is not None and not parent_cf.sandbox.host.crashed:
            sync = self._relay_sync(parent_cf, codeflow)
        try:
            yield from self._lower_leg(codeflow, flushes, obs, sync=sync)
        finally:
            # Children keep relaying through this target -- its QP
            # fan-out is what spreads the lowering load -- even if its
            # own lower was counted as failed.
            for child in self._tree_children(pos, len(lowerable)):
                ready[child].succeed(codeflow)

    def _relay_sync(self, parent: CodeFlow, codeflow: CodeFlow) -> RemoteSync:
        """The RemoteSync carrying ``parent`` host -> ``codeflow`` target.

        Built lazily (QP pair wired parent-host-side, like any
        initiator), then cached for the life of the group.  Epoch and
        fault hook are refreshed per use: fencing and armed faults
        must bite relayed ops exactly as they bite the direct path.
        """
        from repro.core.control_plane import _pd_of

        key = (parent.sandbox.name, codeflow.sandbox.name)
        sync = self._relay_syncs.get(key)
        if sync is None:
            parent_ctx = open_device(parent.sandbox.host)
            local_qp = parent_ctx.create_qp(
                parent_ctx.alloc_pd(), parent_ctx.create_cq()
            )
            target_ctx = open_device(codeflow.sandbox.host)
            target_qp = target_ctx.create_qp(
                _pd_of(codeflow.sandbox), target_ctx.create_cq()
            )
            connect_qps(local_qp, target_qp)
            sync = RemoteSync(
                self.sim, local_qp, codeflow.manifest.rkey,
                codeflow.sandbox, retry=codeflow.sync.retry,
            )
            self._relay_syncs[key] = sync
        sync.hb_epoch = codeflow.sync.hb_epoch
        sync.fault_hook = codeflow.sync.fault_hook
        sync.retry = codeflow.sync.retry
        if params.RDX_HB_CHECK:
            # The relay command (forwarded WR chain / lowering order)
            # is a wire message from the control plane: it carries a
            # happens-before edge from whatever the control plane had
            # already confirmed on this target's QP to everything the
            # relay posts next.
            hb.emit_handoff(self.sim, codeflow.sync.qp, sync.qp)
        return sync

    def _relay_deploy(
        self, parent, codeflow, program, linked, hook_name, span, verify
    ) -> Generator:
        """Deploy one leg *through* an already-updated sandbox.

        The parent's host forwards the pre-linked chained WR list
        (image chunks + descriptor + commit CAS) over a relay QP; the
        control plane's CPU and RNIC are never touched.  The leg is
        fenced in its own right -- the 8-byte epoch read rides the
        relay QP, so a target owned by a newer incarnation refuses
        relayed bytes exactly as it refuses direct ones
        (:class:`~repro.errors.StaleEpochError`, never retried).
        """
        sync = self._relay_sync(parent, codeflow)
        saved_sync = codeflow.sync
        codeflow.sync = sync
        codeflow.dispatch_cpu = parent.sandbox.host.cpu
        try:
            yield from codeflow.check_fence()
            report = yield from codeflow.deploy_prog(
                program, linked, hook_name, parent_span=span, fenced=True,
            )
            if verify:
                try:
                    yield from self._verify_image(codeflow, program)
                except ConsistencyError:
                    yield from self._undo(codeflow, program)
                    raise
        finally:
            codeflow.sync = saved_sync
            codeflow.dispatch_cpu = None
            if params.RDX_HB_CHECK:
                # The leg's status report (success or failure) is the
                # return wire message: the control plane only acts on
                # the outcome -- undo, fallback, commit -- after the
                # relay told it what landed.
                hb.emit_handoff(self.sim, sync.qp, saved_sync.qp)
        return report

    def _relay_fallback(self, codeflow, reason: str, obs) -> None:
        obs.counter(
            "rdx.broadcast.relay_fallback",
            target=target_label(codeflow.sandbox.name, self.shard),
            reason=reason,
        ).inc()

    def _verify_image(self, codeflow, program) -> Generator:
        """Read the installed image back and check its trailing CRC.

        Catches silent payload corruption (torn writes, bit flips) at
        deploy time, turning it into a per-target failure the abort
        path can undo -- instead of a data-path crash minutes later.
        """
        record = codeflow.deployed.get(program.name)
        if record is None or record.code_len < 8:
            return
        image = yield from codeflow.sync.read(record.code_addr, record.code_len)
        stored = int.from_bytes(image[-4:], "little")
        if zlib.crc32(image[:-4]) & 0xFFFFFFFF != stored:
            self.control_plane.obs.counter(
                "rdx.broadcast.verify_failed",
                target=target_label(codeflow.sandbox.name, self.shard),
            ).inc()
            raise ConsistencyError(
                f"{program.name} on {codeflow.sandbox.name}: image CRC "
                f"mismatch after deploy (torn or corrupt write)"
            )

    def _undo(self, codeflow, program) -> Generator:
        """Revert one target to its pre-broadcast image."""
        record = codeflow.deployed.get(program.name)
        if record is None:
            return
        if record.history:
            yield from RollbackManager(codeflow).rollback(program.name)
        else:
            # The fresh deploy never reached committed intent, so there
            # is nothing to journal about removing it.
            yield from codeflow.detach(program.name, record_intent=False)

    # -- abort path -----------------------------------------------------------

    def _abort(self, programs, result: BroadcastResult, obs) -> Generator:
        """Undo every succeeded leg: all-or-nothing visibility.

        A target whose hook previously ran an older image rolls back to
        it; a fresh deploy (no history) is detached, reverting the hook
        to 0.  Undo on an unreachable target is best-effort -- counted,
        not fatal (its data path is down anyway).
        """
        result.aborted = True
        started = self.sim.now
        obs.counter("rdx.broadcast.abort").inc()
        for codeflow, program, outcome in zip(
            self.codeflows, programs, result.outcomes
        ):
            if not outcome.ok:
                continue
            record = codeflow.deployed.get(program.name)
            if record is None:
                continue
            had_history = bool(record.history)
            try:
                yield from self._undo(codeflow, program)
                outcome.rolled_back = had_history
                outcome.detached = not had_history
            except ReproError as err:
                obs.counter(
                    "rdx.broadcast.abort_failed",
                    target=target_label(outcome.target, self.shard),
                ).inc()
                outcome.error = f"abort undo failed: {err}"
        result.abort_us = self.sim.now - started
        obs.histogram("rdx.broadcast.abort_us").observe(result.abort_us)
