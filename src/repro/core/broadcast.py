"""Collective CodeFlow: transactional cluster-wide updates (paper §4).

``rdx_broadcast`` treats a group update as one distributed transaction
whose write set spans every target hook (inspired by RDMA distributed
transactions).  Consistency comes from **Big Bubble Update (BBU)**:

1. raise the *bubble flag* on every target (data paths buffer incoming
   requests instead of executing mixed logic),
2. deploy all extensions in parallel,
3. lower the flags in dependency order, releasing buffered requests.

Because RDX injection is microseconds, the bubble -- and therefore the
request buffer -- stays tiny; the same scheme under an agent baseline
would need to buffer ~rate x window requests (§2.2 Obs 2's 1M-request
example), which is the ablation ``bench_ablate_bbu`` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro.errors import ConsistencyError, DeployError
from repro.ebpf.program import BpfProgram
from repro.mem.layout import pack_qword
from repro.core.codeflow import CodeFlow


@dataclass
class BroadcastResult:
    """Timing + outcome of one collective update."""

    group_size: int
    started_us: float
    bubble_raised_us: float = 0.0
    deploys_done_us: float = 0.0
    bubble_lowered_us: float = 0.0
    #: The consistency-critical window during which requests buffer.
    bubble_window_us: float = 0.0
    reports: list = field(default_factory=list)

    @property
    def total_us(self) -> float:
        return self.bubble_lowered_us - self.started_us


class CodeFlowGroup:
    """A set of CodeFlows updated as one transaction."""

    def __init__(self, codeflows: Sequence[CodeFlow]):
        if not codeflows:
            raise DeployError("empty CodeFlow group")
        self.codeflows = list(codeflows)
        self.sim = codeflows[0].sim
        self.control_plane = codeflows[0].control_plane

    def __len__(self) -> int:
        return len(self.codeflows)

    # -- bubble control -------------------------------------------------------

    def _set_bubble(self, codeflow: CodeFlow, value: int) -> Generator:
        addr = codeflow.sandbox.bubble_addr
        yield from codeflow.sync.write(addr, pack_qword(value))
        yield from codeflow.sync.cc_event(addr, 8)

    # -- rdx_broadcast -----------------------------------------------------------

    def broadcast(
        self,
        programs: Sequence[BpfProgram],
        hook_name: str,
        dependency_order: Optional[Sequence[int]] = None,
        use_bbu: bool = True,
    ) -> Generator:
        """Deploy ``programs[i]`` to ``codeflows[i]`` transactionally.

        ``dependency_order`` lists group indices in the order bubbles
        must be lowered (callees before callers); default is reverse
        group order.  Programs must already be prepared (validated +
        compiled) or preparable; linking happens per target.
        """
        if len(programs) != len(self.codeflows):
            raise DeployError(
                f"broadcast needs one program per target "
                f"({len(programs)} != {len(self.codeflows)})"
            )
        order = list(dependency_order or range(len(self.codeflows) - 1, -1, -1))
        if sorted(order) != list(range(len(self.codeflows))):
            raise ConsistencyError("dependency_order must permute the group")

        result = BroadcastResult(
            group_size=len(self.codeflows), started_us=self.sim.now
        )

        obs = self.control_plane.obs
        obs.counter("rdx.broadcast.count").inc()
        obs.counter("rdx.broadcast.targets").inc(len(self.codeflows))
        obs.histogram("rdx.broadcast.fanout").observe(len(self.codeflows))
        with obs.span(
            "rdx.broadcast", group_size=len(self.codeflows), bbu=use_bbu
        ) as span:
            # Phase 0: make sure every program is validated + compiled
            # *before* any bubble rises -- the registry's "validate once,
            # deploy anywhere" keeps compilation off the consistency
            # window entirely.
            for program, codeflow in zip(programs, self.codeflows):
                yield from self.control_plane.prepare_for(
                    codeflow, program, parent_span=span
                )

            # Phase 1: raise every bubble in parallel.
            if use_bbu:
                raises = [
                    self.sim.spawn(self._set_bubble(cf, 1), name=f"bubble+{i}")
                    for i, cf in enumerate(self.codeflows)
                ]
                yield self.sim.all_of(raises)
            result.bubble_raised_us = self.sim.now

            # Phase 2: deploy everywhere in parallel (the write set).
            # Each target's deploy runs inside its own child span, so
            # the fan-out renders as one parent with per-target legs.
            def deploy_one(cf, prog):
                with obs.span(
                    "rdx.broadcast.target", parent=span,
                    target=cf.sandbox.name, program=prog.name,
                ) as child:
                    report = yield from self.control_plane.inject(
                        cf, prog, hook_name, parent_span=child
                    )
                return report

            # Phases 2-3 are exception-safe: whatever happens during
            # the deploy fan-out, every raised bubble is lowered before
            # an error escapes.  A bubble left raised would buffer the
            # target's requests forever -- the §2.2 agent-lockout
            # pathology BBU exists to avoid.
            try:
                deploys = [
                    self.sim.spawn(
                        deploy_one(cf, prog), name=f"deploy:{prog.name}"
                    )
                    for cf, prog in zip(self.codeflows, programs)
                ]
                done = yield self.sim.all_of(deploys)
                result.reports = list(done)
                result.deploys_done_us = self.sim.now
            finally:
                # Phase 3: lower bubbles in dependency order
                # (sequential: a caller's bubble only drops once its
                # callees run new logic).  Runs on the failure path
                # too, so no target is left buffering.
                if use_bbu:
                    for index in order:
                        yield from self._set_bubble(self.codeflows[index], 0)
        result.bubble_lowered_us = self.sim.now
        result.bubble_window_us = result.bubble_lowered_us - result.bubble_raised_us
        # BBU buffering cost proxy: how long every target held requests.
        obs.histogram("rdx.broadcast.bubble_window_us").observe(
            result.bubble_window_us
        )
        return result
