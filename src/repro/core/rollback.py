"""Rollback and hot patching for buggy extensions (paper §4).

The control plane retains previous code images *in remote memory* --
detached images are only garbage-collected when code pages run low --
so a rollback is a single transactional pointer flip + flush:
microseconds, independent of target CPU load.  This avoids the
agent baseline's lockout effect, where rollback competes with the very
CPU saturation it is trying to relieve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import DeployError
from repro.ebpf.program import BpfProgram
from repro.core.codeflow import CodeFlow, DeployReport


@dataclass
class RollbackRecord:
    """One completed rollback, for audit."""

    program_name: str
    target: str
    from_addr: int
    to_addr: int
    duration_us: float


class RollbackManager:
    """Reverts faulty extensions to their last stable image."""

    def __init__(self, codeflow: CodeFlow):
        self.codeflow = codeflow
        self.sim = codeflow.sim
        self.audit_log: list[RollbackRecord] = []

    def rollback(self, program_name: str) -> Generator:
        """Flip the hook back to the previous image (microseconds).

        Raises :class:`DeployError` when no previous version is
        resident.  Returns the :class:`RollbackRecord`.
        """
        record = self.codeflow.deployed.get(program_name)
        if record is None:
            raise DeployError(f"{program_name!r} is not deployed")
        if not record.history:
            raise DeployError(f"{program_name!r} has no previous version")
        stable_addr = record.history[-1]
        started = self.sim.now
        from_addr = record.code_addr
        yield from self.codeflow.flip_to(program_name, stable_addr)
        # flip_to appended from_addr to history; drop the faulty image
        # from the rollback chain so repeated rollbacks walk backwards.
        record.history.remove(stable_addr)
        if record.history and record.history[-1] == from_addr:
            record.history.pop()
        entry = RollbackRecord(
            program_name=program_name,
            target=self.codeflow.sandbox.name,
            from_addr=from_addr,
            to_addr=stable_addr,
            duration_us=self.sim.now - started,
        )
        self.audit_log.append(entry)
        return entry

    def hot_patch(
        self, program: BpfProgram, hook_name: Optional[str] = None
    ) -> Generator:
        """Deploy a fixed image over a live (possibly faulty) one.

        Uses the normal CodeFlow injection pipeline; the previous image
        stays resident as the rollback target.  Returns the
        :class:`DeployReport`.
        """
        record = self.codeflow.deployed.get(program.name)
        hook = hook_name or (record.hook_name if record else None)
        if hook is None:
            raise DeployError(
                f"hot_patch of {program.name!r}: no hook known; pass hook_name"
            )
        report: DeployReport = yield from self.codeflow.control_plane.inject(
            self.codeflow, program, hook
        )
        return report
