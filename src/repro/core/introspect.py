"""Remote memory introspection over code, states, and hooks (paper §5).

For integrity, the paper proposes "signature-based remote runtime
checks or remote memory introspection" -- the control plane audits a
target entirely through one-sided READs, the way Remote Direct Memory
Introspection audits kernels.  Nothing runs on the target host.

The auditor cross-checks three planes of truth:

* **hooks** -- every hook pointer must be 0 or point at a code image
  the control plane deployed (and the image bytes must still CRC);
* **code** -- each deployed image's bytes in remote memory must hash
  to what the registry shipped (detects post-deploy tampering);
* **metadata** -- live descriptor slots must agree with the control
  plane's records (prog id, code address, length);
* **xstate** -- Meta-XState entries must point at headers with valid
  magic and the geometry the control plane allocated.

Each discrepancy becomes an :class:`IntegrityFinding`; severity
``critical`` findings are the ones an operator would page on.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.core.codeflow import CodeFlow
from repro.core.xstate import decode_xstate_header
from repro.mem.layout import unpack_qword
from repro.obs import telemetry_of
from repro.sandbox.metadata import MetadataBlock, SLOT_LIVE


@dataclass(frozen=True)
class IntegrityFinding:
    """One discrepancy discovered by an audit."""

    severity: str  # "critical" | "warning"
    plane: str  # "hook" | "code" | "metadata" | "xstate"
    subject: str
    detail: str


@dataclass
class AuditReport:
    """Outcome of one remote audit."""

    target: str
    started_us: float
    finished_us: float
    bytes_read: int
    findings: list[IntegrityFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def critical(self) -> list[IntegrityFinding]:
        return [f for f in self.findings if f.severity == "critical"]

    @property
    def duration_us(self) -> float:
        return self.finished_us - self.started_us


class RemoteIntrospector:
    """Audits one CodeFlow's target with one-sided reads only."""

    def __init__(self, codeflow: CodeFlow):
        self.codeflow = codeflow
        self.sim = codeflow.sim
        self.obs = telemetry_of(codeflow.sim)
        #: Expected SHA-256 per deployed program name, captured at
        #: deploy time by :meth:`record_expected`.
        self._expected_hash: dict[str, str] = {}

    def record_expected(self, program_name: str, image: bytes) -> None:
        """Register the shipped image's hash (call after deploy)."""
        self._expected_hash[program_name] = hashlib.sha256(image).hexdigest()

    def snapshot_deployed(self) -> None:
        """Capture expected hashes for everything currently deployed."""
        for name, record in self.codeflow.deployed.items():
            image = self.codeflow.sandbox.host.memory.read(
                record.code_addr, record.code_len
            )
            self._expected_hash[name] = hashlib.sha256(image).hexdigest()

    # -- the audit -------------------------------------------------------

    def audit(self) -> Generator:
        """Run a full remote audit; returns an :class:`AuditReport`."""
        report = AuditReport(
            target=self.codeflow.sandbox.name,
            started_us=self.sim.now,
            finished_us=self.sim.now,
            bytes_read=0,
        )
        with self.obs.span("rdx.audit", target=report.target):
            yield from self._audit_hooks(report)
            yield from self._audit_code(report)
            yield from self._audit_metadata(report)
            yield from self._audit_xstate(report)
        report.finished_us = self.sim.now
        self._observe_audit(report)
        return report

    def _observe_audit(self, report: AuditReport) -> None:
        """Feed one finished audit into the metrics registry."""
        self.obs.counter("rdx.audit.runs").inc()
        self.obs.counter("rdx.audit.bytes_read").inc(report.bytes_read)
        self.obs.histogram("rdx.audit.duration_us").observe(report.duration_us)
        for finding in report.findings:
            self.obs.counter(
                "rdx.audit.findings",
                severity=finding.severity,
                plane=finding.plane,
            ).inc()

    def _read(self, report: AuditReport, addr: int, length: int) -> Generator:
        data = yield from self.codeflow.sync.read(addr, length)
        report.bytes_read += length
        return data

    def _audit_hooks(self, report: AuditReport) -> Generator:
        manifest = self.codeflow.manifest
        known_addrs = {
            record.code_addr for record in self.codeflow.deployed.values()
        }
        for record in self.codeflow.deployed.values():
            known_addrs.update(record.history)
        table = yield from self._read(
            report, manifest.hook_table_addr, len(manifest.hook_layout) * 8
        )
        for hook, slot in sorted(manifest.hook_layout.items(), key=lambda kv: kv[1]):
            pointer = unpack_qword(table[slot * 8 : slot * 8 + 8])
            if pointer == 0:
                continue
            if pointer not in known_addrs:
                report.findings.append(
                    IntegrityFinding(
                        severity="critical",
                        plane="hook",
                        subject=hook,
                        detail=f"points at unknown code {pointer:#x}",
                    )
                )

    def _audit_code(self, report: AuditReport) -> Generator:
        for name, record in sorted(self.codeflow.deployed.items()):
            image = yield from self._read(
                report, record.code_addr, record.code_len
            )
            body, crc_bytes = image[:-4], image[-4:]
            if zlib.crc32(body) & 0xFFFFFFFF != int.from_bytes(crc_bytes, "little"):
                report.findings.append(
                    IntegrityFinding(
                        severity="critical",
                        plane="code",
                        subject=name,
                        detail="image CRC mismatch (corrupted in memory)",
                    )
                )
                continue
            expected = self._expected_hash.get(name)
            if expected and hashlib.sha256(image).hexdigest() != expected:
                report.findings.append(
                    IntegrityFinding(
                        severity="critical",
                        plane="code",
                        subject=name,
                        detail="image hash differs from shipped binary",
                    )
                )

    def _audit_metadata(self, report: AuditReport) -> Generator:
        manifest = self.codeflow.manifest
        by_slot = {
            record.metadata_slot: (name, record)
            for name, record in self.codeflow.deployed.items()
        }
        for slot, (name, record) in sorted(by_slot.items()):
            raw = yield from self._read(
                report, manifest.metadata_addr + slot * 256, 256
            )
            block = MetadataBlock.decode(raw)
            if block.state != SLOT_LIVE:
                report.findings.append(
                    IntegrityFinding(
                        severity="warning",
                        plane="metadata",
                        subject=name,
                        detail=f"descriptor state {block.state} != live",
                    )
                )
            if block.code_addr != record.code_addr:
                report.findings.append(
                    IntegrityFinding(
                        severity="critical",
                        plane="metadata",
                        subject=name,
                        detail=(
                            f"descriptor code_addr {block.code_addr:#x} != "
                            f"deployed {record.code_addr:#x}"
                        ),
                    )
                )
            if block.prog_id != record.program.prog_id:
                report.findings.append(
                    IntegrityFinding(
                        severity="warning",
                        plane="metadata",
                        subject=name,
                        detail="descriptor prog_id mismatch",
                    )
                )

    def _audit_xstate(self, report: AuditReport) -> Generator:
        scratchpad = self.codeflow.scratchpad
        for index, handle in sorted(scratchpad._entries.items()):
            entry_raw = yield from self._read(
                report, scratchpad.meta_entry_addr(index), 8
            )
            entry = unpack_qword(entry_raw)
            if entry != handle.header_addr:
                report.findings.append(
                    IntegrityFinding(
                        severity="critical",
                        plane="xstate",
                        subject=handle.name,
                        detail=(
                            f"meta entry {entry:#x} != allocated "
                            f"{handle.header_addr:#x}"
                        ),
                    )
                )
                continue
            header_raw = yield from self._read(report, handle.header_addr, 16)
            header = decode_xstate_header(header_raw)
            if header is None:
                report.findings.append(
                    IntegrityFinding(
                        severity="critical",
                        plane="xstate",
                        subject=handle.name,
                        detail="header magic destroyed",
                    )
                )
            elif (
                header.key_size != handle.spec.key_size
                or header.value_size != handle.spec.value_size
                or header.max_entries != handle.spec.max_entries
            ):
                report.findings.append(
                    IntegrityFinding(
                        severity="critical",
                        plane="xstate",
                        subject=handle.name,
                        detail="header geometry tampered",
                    )
                )


def continuous_audit(
    introspector: RemoteIntrospector,
    interval_us: float = 10_000.0,
    duration_us: float = 1_000_000.0,
) -> Generator:
    """Background auditing loop; returns the list of AuditReports."""
    reports = []
    end = introspector.sim.now + duration_us
    while introspector.sim.now < end:
        yield introspector.sim.timeout(interval_us)
        report = yield from introspector.audit()
        reports.append(report)
        if report.critical:
            break  # surface immediately; caller decides on rollback
    return reports
