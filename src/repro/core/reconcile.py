"""Anti-entropy reconciliation: converge targets to committed intent.

The journal (:mod:`repro.core.journal`) says what *should* be running;
the introspector (:mod:`repro.core.introspect`) can read what *is*.
This module closes the loop.  After any control-plane crash, node
reboot, or healed partition, a :class:`Reconciler` walks every target
and repairs the drift:

* **epoch** -- stamp the current incarnation's epoch (fencing any
  stale predecessor out for good);
* **wipe detection** -- a target whose control surface came back
  zeroed warm-rebooted; the CodeFlow's books are reset to match;
* **adoption** -- live images a previous incarnation deployed are
  adopted into the fresh CodeFlow's records (CRC-checked first), so
  intact work is *kept*, not redone;
* **redeploy / rehook** -- intended programs that are missing or
  corrupt are re-injected from the journal's artifact catalog;
  intended programs whose hook pointer drifted are re-flipped;
* **orphans** -- live descriptors nothing committed (half-applied
  work of in-flight transactions) are detached;
* **XState** -- intended state is adopted in place (the COMMIT record
  carries its placement) or redeployed;
* **bubbles** -- a bubble flag a dead broadcast left raised is
  lowered, unblocking the target's data path.

Every pass ends with a full remote audit; ``converged`` means the
audit came back clean *and* the target's surface matches the journal's
committed intent exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Generator, Optional, Sequence

from repro.errors import DeployError, ReproError
from repro.mem.layout import pack_qword, unpack_qword
from repro.obs import telemetry_of
from repro.sandbox.metadata import MetadataBlock, SLOT_DETACHED, SLOT_LIVE
from repro.sandbox.sandbox import Sandbox
from repro.core.codeflow import CodeFlow
from repro.core.control_plane import RdxControlPlane
from repro.core.health import HealthDetector, TargetHealth
from repro.core.introspect import RemoteIntrospector
from repro.core.journal import IntentJournal, JournalError, TargetIntent
from repro.core.xstate import decode_xstate_header


@dataclass
class RepairAction:
    """One repair the reconciler performed on one target."""

    kind: str  # reset | adopt | redeploy | rehook | unhook | detach_orphan
    #         # | xstate_adopt | xstate_redeploy | lower_bubble
    subject: str
    detail: str = ""


@dataclass
class ReconcileReport:
    """Outcome of one anti-entropy pass over one target."""

    target: str
    started_us: float
    finished_us: float = 0.0
    #: True when the pass found a wiped control surface (warm reboot).
    rebooted: bool = False
    actions: list[RepairAction] = field(default_factory=list)
    #: The closing audit, when the pass got that far.
    audit: object = None
    #: Clean audit + surface exactly matches committed intent.
    converged: bool = False
    error: str = ""

    @property
    def duration_us(self) -> float:
        return self.finished_us - self.started_us


class Reconciler:
    """Converges targets to the journal's committed intent."""

    def __init__(
        self,
        control_plane: RdxControlPlane,
        health: Optional[HealthDetector] = None,
    ):
        self.plane = control_plane
        self.journal = control_plane.journal
        self.sim = control_plane.sim
        self.obs = telemetry_of(self.sim)
        self.health = health

    # -- entry points ----------------------------------------------------

    def reconcile_all(self, codeflows: Sequence[CodeFlow]) -> Generator:
        """Abort dangling intents, then converge every target in turn.

        Targets whose lease is DEAD (when a health detector is wired)
        are deferred rather than probed -- their report carries an
        ``error`` and no repair traffic is wasted on them.
        """
        for txn in self.journal.in_flight():
            try:
                self.journal.abort(
                    txn.txn, reason=f"superseded by epoch {self.plane.epoch}"
                )
            except JournalError:
                pass  # raced with a concurrent terminal record
            self.obs.counter("rdx.reconcile.aborted_txns").inc()
        intent = self.journal.committed_intent()
        reports = []
        for codeflow in codeflows:
            target = codeflow.sandbox.name
            if (
                self.health is not None
                and target in self.health.leases
                and self.health.state_of(target) is TargetHealth.DEAD
            ):
                report = ReconcileReport(target=target, started_us=self.sim.now)
                report.finished_us = self.sim.now
                report.error = "lease is dead; repair deferred"
                self.obs.counter("rdx.reconcile.deferred", target=target).inc()
                reports.append(report)
                continue
            report = yield from self.reconcile(
                codeflow, intent.get(target, TargetIntent())
            )
            reports.append(report)
        return reports

    def reconcile(self, codeflow: CodeFlow, intent: TargetIntent) -> Generator:
        """One anti-entropy pass over one target."""
        target = codeflow.sandbox.name
        report = ReconcileReport(target=target, started_us=self.sim.now)
        self.obs.counter("rdx.reconcile.runs", target=target).inc()
        with self.obs.span("rdx.reconcile", target=target) as span:
            try:
                yield from self._reconcile_body(codeflow, intent, report)
            except ReproError as err:
                report.error = str(err)
                span.status = "error"
                self.obs.counter("rdx.reconcile.failed", target=target).inc()
        report.finished_us = self.sim.now
        self.obs.histogram("rdx.reconcile.duration_us").observe(
            report.duration_us
        )
        for action in report.actions:
            self.obs.counter("rdx.reconcile.repairs", kind=action.kind).inc()
        if report.converged:
            self.obs.counter("rdx.reconcile.converged", target=target).inc()
        return report

    # -- the pass --------------------------------------------------------

    def _reconcile_body(
        self, codeflow: CodeFlow, intent: TargetIntent, report: ReconcileReport
    ) -> Generator:
        sync = codeflow.sync
        manifest = codeflow.manifest

        # Phase 0: wipe detection + epoch stamp.  A zeroed epoch word
        # under a handle that believes things are deployed means the
        # target warm-rebooted: every record describes unreachable
        # bytes, so the books reset before repair starts.  Stamping
        # raises StaleEpochError if a newer incarnation owns the
        # target -- then *we* are the drift.
        remote_epoch = yield from codeflow._read_remote_epoch()
        if remote_epoch == 0 and (
            codeflow.deployed or codeflow.scratchpad.live_count
        ):
            codeflow.reset_after_reboot()
            report.rebooted = True
            self._act(report, "reset", report.target, "control surface wiped")
        yield from codeflow.stamp_epoch(self.plane.epoch)

        # Phase 1: read the whole remote control surface in three
        # one-sided reads: hook table, metadata array, bubble flag.
        hooks_raw = yield from sync.read(
            manifest.hook_table_addr, len(manifest.hook_layout) * 8
        )
        pointers = {
            hook: unpack_qword(hooks_raw[slot * 8 : slot * 8 + 8])
            for hook, slot in manifest.hook_layout.items()
        }
        meta_raw = yield from sync.read(
            manifest.metadata_addr, manifest.metadata_slots * 256
        )
        live: dict[int, MetadataBlock] = {}
        for slot in range(manifest.metadata_slots):
            block = MetadataBlock.decode(meta_raw[slot * 256 : (slot + 1) * 256])
            if block.state == SLOT_LIVE:
                live[slot] = block
        # Reserve every live slot up front so redeploys never clobber
        # a descriptor that is still being considered for adoption.
        codeflow._metadata_used.update(live)

        # Phase 2: programs -- adopt intact survivors, redeploy the rest,
        # re-point drifted hooks.
        adopted_slots: set[int] = set()
        for name, tag in sorted(intent.programs.items()):
            yield from self._reconcile_program(
                codeflow, report, name, tag, intent, live, pointers,
                adopted_slots,
            )

        # Phase 3: orphans -- live descriptors committed intent does not
        # explain (half-applied work of aborted/in-flight transactions).
        for slot, block in sorted(live.items()):
            if slot in adopted_slots:
                continue
            if any(
                record.metadata_slot == slot
                for record in codeflow.deployed.values()
            ):
                continue
            yield from self._detach_orphan(codeflow, report, slot, block)

        # Phase 4: XState -- adopt in place via the journaled placement,
        # or redeploy.
        for name in sorted(intent.xstates):
            yield from self._reconcile_xstate(
                codeflow, report, name, intent.xstates[name]
            )

        # Phase 5: a bubble a dead broadcast left raised buffers the
        # target's requests forever -- lower it.
        bubble_raw = yield from sync.read(codeflow.sandbox.bubble_addr, 8)
        if unpack_qword(bubble_raw) != 0:
            yield from sync.write(codeflow.sandbox.bubble_addr, pack_qword(0))
            yield from sync.cc_event(codeflow.sandbox.bubble_addr, 8)
            self._act(report, "lower_bubble", report.target, "stranded flag")

        # Phase 6: the closing audit, plus an exact intent match.
        introspector = RemoteIntrospector(codeflow)
        introspector.snapshot_deployed()
        report.audit = yield from introspector.audit()
        report.converged = report.audit.clean and self._matches_intent(
            codeflow, intent
        )

    def _reconcile_program(
        self, codeflow, report, name, tag, intent, live, pointers,
        adopted_slots,
    ) -> Generator:
        program = self.journal.program_for(tag)
        hook = next((h for h, t in intent.hooks.items() if t == tag), "")
        record = codeflow.deployed.get(name)

        if record is None:
            # Is an intact image for this tag already resident?  When
            # several copies of the same tag survive (the same program
            # was broadcast twice), prefer the one the hook is serving.
            candidates = sorted(
                (
                    (slot, block)
                    for slot, block in live.items()
                    if slot not in adopted_slots
                    and block.tag.rstrip(b"\x00") == tag.encode()[:16]
                ),
                key=lambda item: (
                    item[1].code_addr != pointers.get(hook, 0),
                    item[0],
                ),
            )
            for slot, block in candidates:
                image = yield from self._image_intact(codeflow, block)
                if image is None:
                    continue
                # The verified bytes ride into the record: the next
                # full deploy then registers this extent as a delta
                # baseline instead of treating its content as unknown.
                codeflow.adopt(program, hook, slot, block, image=image)
                adopted_slots.add(slot)
                record = codeflow.deployed[name]
                self._act(
                    report, "adopt", name,
                    f"slot {slot} @{block.code_addr:#x} v{block.version}",
                )
                if block.prog_id != program.prog_id:
                    # Identical code rebroadcast under a fresh prog_id:
                    # the catalog is the truth, the descriptor drifted.
                    yield from codeflow.sync.write(
                        codeflow.manifest.metadata_addr + slot * 256,
                        replace(block, prog_id=program.prog_id).encode(),
                    )
                    self._act(
                        report, "repair_descriptor", name,
                        f"prog_id {block.prog_id} -> {program.prog_id}",
                    )
                break

        if record is None:
            # Nothing usable survived: clear whatever squats on the
            # hook, then redeploy from the artifact catalog.
            current = pointers.get(hook, 0)
            if hook and current:
                yield from self._flip_hook(codeflow, hook, current, 0)
                pointers[hook] = 0
                self._act(report, "unhook", hook, f"cleared {current:#x}")
            yield from self.plane.inject(codeflow, program, hook)
            self._act(report, "redeploy", name, f"hook {hook}")
            return

        # The record exists (pre-existing or just adopted): make sure
        # the hook pointer agrees with it.
        if hook:
            current = pointers.get(hook, 0)
            if current != record.code_addr:
                yield from self._flip_hook(
                    codeflow, hook, current, record.code_addr
                )
                pointers[hook] = record.code_addr
                codeflow._hook_owner[hook] = name
                self._act(
                    report, "rehook", hook,
                    f"{current:#x} -> {record.code_addr:#x}",
                )

    def _image_intact(self, codeflow, block: MetadataBlock) -> Generator:
        """CRC-check a candidate image; returns its bytes, or None.

        Returning the verified bytes (not just a boolean) lets the
        adopter record exactly which image is resident -- the delta
        deploy path needs known baseline bytes, and this readback is
        the only trustworthy source after a control-plane restart.
        """
        if block.code_len < 8:
            return None
        image = yield from codeflow.sync.read(block.code_addr, block.code_len)
        stored = int.from_bytes(image[-4:], "little")
        if zlib.crc32(image[:-4]) & 0xFFFFFFFF != stored:
            return None
        return image

    def _flip_hook(self, codeflow, hook, expect, new) -> Generator:
        hook_addr = codeflow._hook_addr(hook)
        prior = yield from codeflow.sync.tx(
            obj_addr=new or expect,
            obj_bytes=b"",
            qword_addr=hook_addr,
            new_qword=new,
            expect=expect,
        )
        if prior != expect:
            raise DeployError(
                f"reconcile: hook {hook!r} moved underneath us "
                f"({prior:#x} != {expect:#x})"
            )
        yield from codeflow.sync.cc_event(hook_addr, 8)

    def _detach_orphan(self, codeflow, report, slot, block) -> Generator:
        # Clear any hook still pointing at the orphan's image first, so
        # the data path never runs code with a dead descriptor.
        manifest = codeflow.manifest
        # A redeploy earlier in this pass may have reused the orphan's
        # freed code pages: the hook then points at the *live* image
        # that overwrote the orphan, not at the orphan itself -- only
        # the stale descriptor needs clearing.
        reused = any(
            record.code_addr == block.code_addr
            for record in codeflow.deployed.values()
        )
        for hook in sorted(manifest.hook_layout):
            hook_addr = codeflow._hook_addr(hook)
            raw = yield from codeflow.sync.read(hook_addr, 8)
            if unpack_qword(raw) == block.code_addr and block.code_addr:
                if reused:
                    continue
                yield from self._flip_hook(codeflow, hook, block.code_addr, 0)
                self._act(report, "unhook", hook, f"orphan {block.name}")
        state_addr = manifest.metadata_addr + slot * 256
        yield from codeflow.sync.write(
            state_addr, SLOT_DETACHED.to_bytes(4, "little")
        )
        codeflow._metadata_used.discard(slot)
        self._act(
            report, "detach_orphan", block.name or f"slot{slot}",
            f"@{block.code_addr:#x}",
        )

    def _reconcile_xstate(self, codeflow, report, name, spec_detail) -> Generator:
        if codeflow.scratchpad.by_name(name) is not None:
            return
        spec = TargetIntent(xstates={name: spec_detail}).spec_of(name)
        meta_index = spec_detail.get("meta_index")
        header_addr = spec_detail.get("header_addr")
        if meta_index is not None and header_addr:
            entry_raw = yield from codeflow.sync.read(
                codeflow.scratchpad.meta_entry_addr(meta_index), 8
            )
            if unpack_qword(entry_raw) == header_addr:
                header_raw = yield from codeflow.sync.read(header_addr, 16)
                header = decode_xstate_header(header_raw)
                if (
                    header is not None
                    and header.key_size == spec.key_size
                    and header.value_size == spec.value_size
                    and header.max_entries == spec.max_entries
                ):
                    codeflow.scratchpad.adopt(spec, meta_index, header_addr)
                    self._act(
                        report, "xstate_adopt", name,
                        f"meta[{meta_index}] @{header_addr:#x}",
                    )
                    return
        yield from codeflow.deploy_xstate(spec)
        self._act(report, "xstate_redeploy", name, "")

    # -- convergence check ------------------------------------------------

    def _matches_intent(self, codeflow: CodeFlow, intent: TargetIntent) -> bool:
        if set(codeflow.deployed) != set(intent.programs):
            return False
        for name, tag in intent.programs.items():
            if codeflow.deployed[name].program.tag() != tag:
                return False
        for hook, tag in intent.hooks.items():
            owner = codeflow._hook_owner.get(hook)
            if owner is None or codeflow.deployed[owner].program.tag() != tag:
                return False
        for name in intent.xstates:
            if codeflow.scratchpad.by_name(name) is None:
                return False
        return True

    @staticmethod
    def _act(report: ReconcileReport, kind: str, subject: str, detail: str):
        report.actions.append(
            RepairAction(kind=kind, subject=subject, detail=detail)
        )


def resume_control_plane(
    host,
    journal: IntentJournal,
    sandboxes: Sequence[Sandbox],
    health_codeflows: bool = False,
    **plane_kwargs,
) -> Generator:
    """Bring up a fresh control-plane incarnation over an old journal.

    Claims the next epoch (fencing the dead/stale predecessor), opens a
    CodeFlow per sandbox -- stamping the new epoch into each target's
    control block on the way -- and returns ``(plane, codeflows)``.
    Run a :class:`Reconciler` over the codeflows next to repair drift;
    :func:`repro.exp.recovery_campaign.run_recovery_campaign` shows the
    full sequence.
    """
    plane = RdxControlPlane(host, journal=journal, **plane_kwargs)
    codeflows = []
    for sandbox in sandboxes:
        codeflow = yield from plane.create_codeflow(sandbox)
        codeflows.append(codeflow)
    del health_codeflows
    return plane, codeflows
