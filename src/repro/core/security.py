"""Security model for the remote gatekeeper (paper §5).

* **Confidentiality** -- role-based privileges: every control-plane
  operation names a principal whose role must grant that operation,
  optionally scoped to specific targets.
* **Integrity** -- HMAC signatures over program images; the control
  plane refuses unsigned/mis-signed programs when a signing key is
  configured.
* **Availability** -- runtime limits (instruction count, map count)
  enforced before any remote bytes move.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SecurityError
from repro.ebpf.program import BpfProgram


class Role(enum.Enum):
    """Privilege tiers, least to most powerful."""

    OBSERVER = "observer"  # read-only introspection
    OPERATOR = "operator"  # deploy/rollback extensions
    ADMIN = "admin"  # everything incl. codeflow/teardown

#: Operations each role may perform.
_ROLE_OPS = {
    Role.OBSERVER: {"inspect", "xstate_read"},
    Role.OPERATOR: {
        "inspect",
        "xstate_read",
        "xstate_write",
        "validate",
        "compile",
        "deploy",
        "rollback",
        "broadcast",
    },
    Role.ADMIN: {
        "inspect",
        "xstate_read",
        "xstate_write",
        "validate",
        "compile",
        "deploy",
        "rollback",
        "broadcast",
        "create_codeflow",
        "teardown",
        "migrate",
    },
}


@dataclass(frozen=True)
class Principal:
    """An authenticated caller."""

    name: str
    role: Role
    #: Restrict to specific target sandboxes ((), meaning all).
    target_scope: tuple[str, ...] = ()


@dataclass
class SecurityPolicy:
    """The control plane's gatekeeper configuration."""

    require_principal: bool = False
    signing_key: Optional[bytes] = None
    max_insns: int = 1_000_000
    max_maps: int = 64
    #: Program tags -> signatures registered by trusted publishers.
    _signatures: dict[str, bytes] = field(default_factory=dict)

    @classmethod
    def permissive(cls) -> "SecurityPolicy":
        """No authentication, generous limits (single-tenant default)."""
        return cls(require_principal=False)

    @classmethod
    def strict(cls, signing_key: bytes, max_insns: int = 100_000) -> "SecurityPolicy":
        """Authentication + signatures + tight limits."""
        return cls(
            require_principal=True,
            signing_key=signing_key,
            max_insns=max_insns,
        )

    # -- RBAC ------------------------------------------------------------

    def check(
        self, principal: Optional[Principal], operation: str, target: str = ""
    ) -> None:
        """Raise :class:`SecurityError` unless the call is permitted."""
        if principal is None:
            if self.require_principal:
                raise SecurityError(f"{operation}: authentication required")
            return
        allowed = _ROLE_OPS[principal.role]
        if operation not in allowed:
            raise SecurityError(
                f"{principal.name} ({principal.role.value}) may not {operation}"
            )
        if principal.target_scope and target and target not in principal.target_scope:
            raise SecurityError(
                f"{principal.name} is not scoped to target {target!r}"
            )

    # -- integrity --------------------------------------------------------

    def sign_program(self, program: BpfProgram) -> bytes:
        """Publisher-side signing (requires the shared key)."""
        if self.signing_key is None:
            raise SecurityError("no signing key configured")
        signature = hmac.new(
            self.signing_key, program.image(), hashlib.sha256
        ).digest()
        self._signatures[program.tag()] = signature
        return signature

    def verify_signature(self, program: BpfProgram) -> None:
        """Control-plane-side verification before deployment."""
        if self.signing_key is None:
            return
        expected = hmac.new(
            self.signing_key, program.image(), hashlib.sha256
        ).digest()
        recorded = self._signatures.get(program.tag())
        if recorded is None or not hmac.compare_digest(expected, recorded):
            raise SecurityError(
                f"program {program.name!r}: missing or invalid signature"
            )

    # -- availability ---------------------------------------------------------

    def check_program_limits(self, program: BpfProgram) -> None:
        if len(program.insns) > self.max_insns:
            raise SecurityError(
                f"program {program.name!r} exceeds instruction limit "
                f"({len(program.insns)} > {self.max_insns})"
            )
        if len(program.map_names) > self.max_maps:
            raise SecurityError(f"program {program.name!r} uses too many maps")
        self.verify_signature(program)
