"""RDX: the paper's contribution -- agentless remote code execution.

The package implements the full CodeFlow roadmap of Fig 3:

* :mod:`~repro.core.codeflow` -- CodeFlow handles bound to remote
  sandboxes (programming model, §3.1);
* :mod:`~repro.core.control_plane` -- the remote control plane that
  validates, JIT-compiles (with caching: "validate once, deploy
  anywhere", §3.2), links, and deploys;
* :mod:`~repro.core.linker` -- binary rewriting against the target's
  GOT/context (§3.3);
* :mod:`~repro.core.xstate` -- Meta-XState indirection and remote
  state management (§3.4);
* :mod:`~repro.core.sync` -- remote transaction / cache-coherence /
  mutual-exclusion primitives (§3.5);
* :mod:`~repro.core.broadcast` -- Collective CodeFlow + Big Bubble
  Update (§4);
* :mod:`~repro.core.rollback` -- microsecond rollback & hot patching
  (§4);
* :mod:`~repro.core.migration` -- extension live migration (§4);
* :mod:`~repro.core.security` -- RBAC, signatures, runtime limits (§5);
* :mod:`~repro.core.api` -- the Table 1 operations, verbatim.
"""

from repro.core.codeflow import CodeFlow, DeployedProgram
from repro.core.control_plane import RdxControlPlane
from repro.core.faults import FaultInjector, FaultKind
from repro.core.loops import ControlLoop, ThresholdPolicy
from repro.core.orchestrator import (
    ExtensionSpec,
    Fleet,
    OrchestrationIntent,
    Selector,
    Strategy,
    execute_plan,
    plan_intent,
)
from repro.core.qos import QosScheduler, TenantQuota
from repro.core.xstate import XStateHandle, XStateHeader, XStateSpec, decode_xstate_header
from repro.core.broadcast import BroadcastResult, CodeFlowGroup, TargetOutcome
from repro.core.retry import RetryPolicy
from repro.core.rollback import RollbackManager
from repro.core.migration import MigrationManager
from repro.core.security import Principal, Role, SecurityPolicy
from repro.core.api import (
    rdx_broadcast,
    rdx_cc_event,
    rdx_create_codeflow,
    rdx_deploy_prog,
    rdx_deploy_xstate,
    rdx_jit_compile_code,
    rdx_link_code,
    rdx_mutual_excl,
    rdx_tx,
    rdx_validate_code,
)

__all__ = [
    "BroadcastResult",
    "CodeFlow",
    "CodeFlowGroup",
    "ControlLoop",
    "DeployedProgram",
    "ExtensionSpec",
    "FaultInjector",
    "FaultKind",
    "Fleet",
    "OrchestrationIntent",
    "QosScheduler",
    "Selector",
    "Strategy",
    "TenantQuota",
    "ThresholdPolicy",
    "execute_plan",
    "plan_intent",
    "MigrationManager",
    "Principal",
    "RdxControlPlane",
    "RetryPolicy",
    "Role",
    "RollbackManager",
    "TargetOutcome",
    "SecurityPolicy",
    "XStateHandle",
    "XStateHeader",
    "XStateSpec",
    "decode_xstate_header",
    "rdx_broadcast",
    "rdx_cc_event",
    "rdx_create_codeflow",
    "rdx_deploy_prog",
    "rdx_deploy_xstate",
    "rdx_jit_compile_code",
    "rdx_link_code",
    "rdx_mutual_excl",
    "rdx_tx",
    "rdx_validate_code",
]
