"""Sharded control planes: one CodeFlow group, K fenced owners.

One control plane drives ~hundreds of targets comfortably; at rack
scale (1000+) its CPU pool and RNIC pipeline become the serial term in
every collective operation.  The fix is the standard one: partition
the group across K control-plane *shards*, each a full
:class:`~repro.core.control_plane.RdxControlPlane` owning its slice
under the existing epoch/lease/journal machinery -- fenced ownership,
crash handoff via the reconciler, per-shard WAL -- so nothing about
single-target correctness changes.

What does change is the transaction boundary: ``rdx_broadcast`` must
stay all-or-nothing across the *whole* group, not per shard.
:class:`ShardCoordinator` runs the cross-shard commit: every shard
deploys under its own bubbles, then votes with its leg tally and holds
its bubbles until the coordinator's verdict.  A sibling shard's
failure aborts a clean shard's legs too; quorum mode
(``allow_partial``) is decided on the *global* tally, so a shard whose
every leg died still keeps its group membership when the rest of the
rack survived.

:class:`ShardedGroup` is the drop-in collective handle: it slices the
program list along the partition, drives each shard's
:class:`~repro.core.broadcast.CodeFlowGroup` concurrently, and merges
the per-shard results into one :class:`~repro.core.broadcast.BroadcastResult`.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.errors import BroadcastAborted, ConsistencyError, DeployError, ReproError
from repro.obs import telemetry_of
from repro.core.broadcast import BroadcastResult, CodeFlowGroup


def partition(items: Sequence, shards: int) -> list[list]:
    """Split ``items`` into ``shards`` contiguous, near-equal slices.

    Contiguous (not round-robin) so a shard's targets are rack
    neighbours under the usual node-naming conventions, and so the
    partition is stable under group growth at the tail.  Never returns
    empty slices: the shard count is clamped to ``len(items)``.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    shards = min(shards, len(items)) or 1
    base, extra = divmod(len(items), shards)
    out = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


class ShardCoordinator:
    """Cross-shard commit: collect one vote per shard, decide once.

    The protocol is a two-phase commit with the per-shard broadcast
    bodies as participants: each shard calls :meth:`vote` after its
    deploy fan-out (bubbles still raised) and blocks until every
    expected shard has voted; the coordinator then decides

    * ``commit`` -- no leg failed anywhere,
    * ``degraded`` -- failures exist, ``allow_partial`` is on, and at
      least one leg survived globally (quorum mode),
    * ``abort`` -- otherwise: every shard rolls back its succeeded
      legs, including shards whose own tally was clean.

    The decision is journaled (one record, written before any voter is
    released) so a post-crash reconciler can tell a decided
    transaction from one that died mid-vote.  A shard that crashes
    before voting is handled by :meth:`forfeit` -- its silence counts
    as an all-failed tally, so surviving shards are never left holding
    their bubbles on a vote that cannot arrive.
    """

    def __init__(
        self,
        sim,
        shards: Sequence[str],
        allow_partial: bool = False,
        journal=None,
        epoch: int = 0,
        txn: str = "",
    ):
        if not shards:
            raise DeployError("coordinator needs at least one shard")
        if len(set(shards)) != len(shards):
            raise DeployError(f"duplicate shard names: {sorted(shards)}")
        self.sim = sim
        self.expected = set(shards)
        self.allow_partial = allow_partial
        self.journal = journal
        self.epoch = epoch
        self.txn = txn or "shard-commit"
        self.votes: dict[str, tuple[list, list]] = {}
        self.decision: Optional[str] = None
        self._decided = sim.event()
        self.obs = telemetry_of(sim)

    def vote(self, shard: str, ok: Sequence[str], failed: Sequence[str]) -> Generator:
        """One shard's tally; blocks until the global decision."""
        if shard not in self.expected:
            raise ConsistencyError(f"unexpected shard vote: {shard!r}")
        if shard in self.votes:
            raise ConsistencyError(f"shard {shard!r} voted twice")
        self.votes[shard] = (list(ok), list(failed))
        if set(self.votes) == self.expected:
            self._decide()
        if self.decision is None:
            yield self._decided
        return self.decision

    def forfeit(self, shard: str) -> None:
        """Count a shard that died before voting as all-failed.

        Called by the shard's driver when its broadcast body raised
        before reaching the vote barrier (prepare failure, crashed
        incarnation): the remaining shards must not block forever on a
        vote that will never be cast.
        """
        if shard in self.votes:
            return
        self.votes[shard] = ([], ["*"])
        if set(self.votes) == self.expected:
            self._decide()

    def _decide(self) -> None:
        if self.decision is not None:
            return
        ok = sum(len(tally[0]) for tally in self.votes.values())
        failed = sum(len(tally[1]) for tally in self.votes.values())
        if failed == 0:
            self.decision = "commit"
        elif self.allow_partial and ok:
            self.decision = "degraded"
        else:
            self.decision = "abort"
        # One durable decision record before any voter is released:
        # the reconciler can always tell decided from died-mid-vote.
        if self.journal is not None:
            self.journal.begin(
                self.txn, "shard-commit", self.epoch,
                shards=sorted(self.votes),
            )
            if self.decision == "abort":
                self.journal.abort(
                    self.txn, reason=f"{failed} leg(s) failed across shards"
                )
            else:
                self.journal.commit(
                    self.txn, decision=self.decision, ok=ok, failed=failed
                )
        self.obs.counter(
            "rdx.shard.decisions", decision=self.decision
        ).inc()
        self._decided.succeed(self.decision)


class ShardedGroup:
    """K per-shard CodeFlow groups updated as one transaction."""

    def __init__(self, groups: Sequence[CodeFlowGroup]):
        if not groups:
            raise DeployError("empty sharded group")
        self.groups = list(groups)
        self.sim = self.groups[0].sim
        self.shards = [
            group.shard or f"shard{index}"
            for index, group in enumerate(self.groups)
        ]
        if len(set(self.shards)) != len(self.shards):
            raise DeployError(f"duplicate shard names: {sorted(self.shards)}")

    def __len__(self) -> int:
        return sum(len(group) for group in self.groups)

    @property
    def codeflows(self) -> list:
        return [cf for group in self.groups for cf in group.codeflows]

    def broadcast(
        self,
        programs: Sequence,
        hook_name: str,
        allow_partial: bool = False,
        **kwargs,
    ) -> Generator:
        """Cross-shard ``rdx_broadcast``: K concurrent shard bodies, one
        commit decision.

        ``programs`` is ordered like :attr:`codeflows` (shard 0's
        slice first).  Every other keyword is passed through to each
        shard's :meth:`~repro.core.broadcast.CodeFlowGroup.broadcast`.
        All-or-nothing and quorum semantics hold across the whole
        group; the merged result carries the union of outcomes and the
        *global* bubble window (first raise to last lower).
        """
        if len(programs) != len(self):
            raise DeployError(
                f"sharded broadcast needs one program per target "
                f"({len(programs)} != {len(self)})"
            )
        lead = self.groups[0].control_plane
        coordinator = ShardCoordinator(
            self.sim,
            shards=self.shards,
            allow_partial=allow_partial,
            journal=lead.journal,
            epoch=lead.epoch,
            txn=lead._mint_txn("shard-commit"),
        )
        slices = []
        offset = 0
        for group in self.groups:
            slices.append(list(programs[offset : offset + len(group)]))
            offset += len(group)

        results: list[Optional[BroadcastResult]] = [None] * len(self.groups)
        errors: list[Optional[BaseException]] = [None] * len(self.groups)

        def shard_leg(index: int) -> Generator:
            shard = self.shards[index]
            try:
                results[index] = yield from self.groups[index].broadcast(
                    slices[index], hook_name,
                    allow_partial=allow_partial,
                    coordinator=coordinator,
                    **kwargs,
                )
            except BroadcastAborted as err:
                results[index] = err.result
                errors[index] = err
            except ReproError as err:
                # Failed before the vote barrier (prepare error, fenced
                # plane): forfeit so sibling shards are not stranded.
                errors[index] = err
            finally:
                coordinator.forfeit(shard)

        legs = [
            self.sim.spawn(shard_leg(index), name=f"shard:{self.shards[index]}")
            for index in range(len(self.groups))
        ]
        yield self.sim.all_of(legs)

        for index, err in enumerate(errors):
            if err is not None and not isinstance(err, BroadcastAborted):
                raise err

        merged = self._merge(results)
        if coordinator.decision == "abort" or merged.aborted:
            merged.aborted = True
            failures = merged.failed_targets
            detail = (
                f"(first: {failures[0].target}: {failures[0].error_kind})"
                if failures
                else "(cross-shard abort)"
            )
            raise BroadcastAborted(
                f"sharded broadcast aborted: {len(failures)}/{len(self)} "
                f"targets failed across {len(self.groups)} shards {detail}",
                result=merged,
            )
        return merged

    def _merge(
        self, results: Sequence[Optional[BroadcastResult]]
    ) -> BroadcastResult:
        present = [result for result in results if result is not None]
        merged = BroadcastResult(
            group_size=len(self),
            started_us=min(result.started_us for result in present),
        )
        for result in present:
            merged.outcomes.extend(result.outcomes)
            merged.reports.extend(result.reports)
            merged.aborted = merged.aborted or result.aborted
            merged.degraded = merged.degraded or result.degraded
            merged.abort_us += result.abort_us
        merged.bubble_raised_us = min(
            result.bubble_raised_us for result in present
        )
        merged.deploys_done_us = max(
            result.deploys_done_us for result in present
        )
        merged.bubble_lowered_us = max(
            result.bubble_lowered_us for result in present
        )
        # The *group* consistency window: from the first bubble up
        # anywhere to the last bubble down anywhere.
        merged.bubble_window_us = (
            merged.bubble_lowered_us - merged.bubble_raised_us
        )
        return merged
