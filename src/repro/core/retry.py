"""Retry policy for one-sided operations against unreliable targets.

RDX's control plane talks to targets exclusively through one-sided
RDMA, so every transport hiccup surfaces at the initiator as a failed
work completion.  :class:`RetryPolicy` is the one place that decides
how those failures are absorbed: bounded attempts, exponential backoff
with *seeded* jitter (two contenders retrying in lockstep livelock --
the jitter decorrelates them deterministically), and an optional
per-operation deadline in simulated time.

Only :class:`~repro.errors.TransientFault` (and its subclass
:class:`~repro.errors.HostUnreachable`) is retried; everything else --
protection errors, verifier rejections, CAS conflicts -- is a logical
failure where retrying the same bytes cannot help.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro import params
from repro.errors import DeadlineExceeded, TransientFault
from repro.obs import telemetry_of


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a transiently failing operation.

    ``backoff_us(attempt)`` grows geometrically from ``backoff_base_us``
    and is capped at ``backoff_max_us``; a seeded RNG contributes up to
    ``jitter_frac`` of the nominal delay on top, so contenders with
    different seeds spread out instead of colliding every round.
    ``deadline_us`` bounds the *whole* operation (attempts + backoffs)
    in simulated time; exceeding it raises
    :class:`~repro.errors.DeadlineExceeded`.
    """

    max_attempts: int = params.RETRY_MAX_ATTEMPTS
    backoff_base_us: float = params.RETRY_BACKOFF_BASE_US
    backoff_multiplier: float = 2.0
    backoff_max_us: float = params.RETRY_BACKOFF_MAX_US
    jitter_frac: float = 0.5
    deadline_us: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base_us < 0 or self.backoff_max_us < 0:
            raise ValueError("backoff bounds must be non-negative")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(f"jitter_frac out of [0, 1]: {self.jitter_frac}")

    def backoff_us(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered."""
        nominal = min(
            self.backoff_base_us * self.backoff_multiplier ** (attempt - 1),
            self.backoff_max_us,
        )
        if rng is None or self.jitter_frac == 0.0:
            return nominal
        return nominal * (1.0 + self.jitter_frac * rng.random())

    def run(
        self,
        sim,
        attempt_factory: Callable[[], Generator],
        op: str = "op",
        rng: Optional[random.Random] = None,
    ) -> Generator:
        """Drive ``attempt_factory()`` to success within the budget.

        ``attempt_factory`` is called once per attempt and must return
        a fresh simulation-process generator.  Transient faults are
        absorbed with backoff until ``max_attempts`` or ``deadline_us``
        runs out; the terminal error is then re-raised (wrapped in
        :class:`DeadlineExceeded` when the clock, not the attempt
        count, was the binding constraint).
        """
        obs = telemetry_of(sim)
        started = sim.now
        last_fault: Optional[TransientFault] = None
        for attempt in range(1, self.max_attempts + 1):
            if (
                self.deadline_us is not None
                and sim.now - started >= self.deadline_us
            ):
                obs.counter("rdx.retry.deadline_expired", op=op).inc()
                raise DeadlineExceeded(
                    f"{op}: deadline {self.deadline_us}us expired after "
                    f"{attempt - 1} attempts"
                ) from last_fault
            try:
                result = yield from attempt_factory()
            except TransientFault as fault:
                last_fault = fault
                obs.counter("rdx.retry.attempts", op=op).inc()
                if attempt == self.max_attempts:
                    obs.counter("rdx.retry.exhausted", op=op).inc()
                    raise
                delay = self.backoff_us(attempt, rng)
                obs.histogram("rdx.retry.backoff_us").observe(delay)
                yield sim.timeout(delay)
                continue
            if attempt > 1:
                obs.counter("rdx.retry.absorbed", op=op).inc()
            return result
        raise AssertionError("unreachable: loop either returns or raises")
