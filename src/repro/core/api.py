"""The CodeFlow API operations of Table 1, under their paper names.

Each function is a simulation-process generator: drive it with
``sim.run_process(...)`` or ``yield from`` inside another process.

========================================  =======================================
Paper operation                           Implemented by
========================================  =======================================
``rdx_create_codeflow(node, ext_spec)``   :func:`rdx_create_codeflow`
``rdx_validate_code(handle, prog)``       :func:`rdx_validate_code`
``rdx_JIT_compile_code(handle, prog)``    :func:`rdx_jit_compile_code`
``rdx_link_code(handle, prog)``           :func:`rdx_link_code`
``rdx_deploy_prog(handle, prog)``         :func:`rdx_deploy_prog`
``rdx_deploy_xstate(handle, XState)``     :func:`rdx_deploy_xstate`
``rdx_tx(handle, obj, qword_swap)``       :func:`rdx_tx`
``rdx_cc_event(handle, hook, addr)``      :func:`rdx_cc_event`
``rdx_mutual_excl(handle, hook_ctx)``     :func:`rdx_mutual_excl`
``rdx_broadcast(group, progs, n)``        :func:`rdx_broadcast`
========================================  =======================================
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.net.topology import Host
from repro.rdma.verbs import open_device
from repro.sandbox.sandbox import Sandbox
from repro.core.broadcast import CodeFlowGroup
from repro.core.codeflow import CodeFlow
from repro.core.control_plane import RdxControlPlane
from repro.core.security import Principal
from repro.core.xstate import XStateSpec


def bootstrap_sandbox(sandbox: Sandbox) -> None:
    """Boot-time, host-local setup: install the management-stub module.

    Opens the host RNIC, allocates the boot PD, and runs
    ``ctx_register`` so the sandbox's control surface is RDMA-visible.
    This is the *only* host-side software step in RDX's lifetime
    (paper §3.1: "installed on each sandbox as a one-time setup").
    """
    ctx = open_device(sandbox.host)
    pd = ctx.alloc_pd()
    sandbox.ctx_register(pd)


def rdx_create_codeflow(
    control_plane: RdxControlPlane,
    sandbox: Sandbox,
    principal: Optional[Principal] = None,
) -> Generator:
    """Create a CodeFlow handle bound to a remote node (Table 1)."""
    codeflow = yield from control_plane.create_codeflow(sandbox, principal)
    return codeflow


def rdx_validate_code(
    handle: CodeFlow,
    program: BpfProgram,
    maps: Sequence[BpfMap] = (),
    principal: Optional[Principal] = None,
) -> Generator:
    """Remotely validate ``program`` using the CodeFlow (Table 1)."""
    stats = yield from handle.control_plane.validate_code(
        program, maps, principal=principal
    )
    return stats


def rdx_jit_compile_code(
    handle: CodeFlow,
    program: BpfProgram,
    principal: Optional[Principal] = None,
) -> Generator:
    """Remotely JIT-compile ``program`` for the handle's target arch."""
    binary = yield from handle.control_plane.jit_compile_code(
        program, arch=handle.manifest.arch, principal=principal
    )
    return binary


def rdx_link_code(handle: CodeFlow, program: BpfProgram) -> Generator:
    """Link the program's cached binary to the remote context (Table 1).

    The program must have been compiled (``rdx_JIT_compile_code`` or
    :meth:`RdxControlPlane.prepare`); returns the linked image.
    """
    key = (program.tag(), handle.manifest.arch)
    entry = handle.control_plane.registry.get(key)
    if entry is None:
        binary = yield from rdx_jit_compile_code(handle, program)
    else:
        binary = entry.binary
    linked = yield from handle.link_code(binary)
    return linked


def rdx_deploy_prog(
    handle: CodeFlow,
    program: BpfProgram,
    hook_name: str,
    maps: Sequence[BpfMap] = (),
    principal: Optional[Principal] = None,
) -> Generator:
    """Deploy ``program`` onto the node bound to ``handle`` (Table 1).

    Full pipeline: validate+compile (cached) -> link -> one-sided
    injection.  Returns the :class:`~repro.core.codeflow.DeployReport`.
    """
    report = yield from handle.control_plane.inject(
        handle, program, hook_name, maps=maps, principal=principal
    )
    return report


def rdx_deploy_xstate(
    handle: CodeFlow, spec: XStateSpec, initial: Optional[BpfMap] = None
) -> Generator:
    """Deploy the XState data structure onto the remote node (Table 1)."""
    xstate = yield from handle.deploy_xstate(spec, initial=initial)
    return xstate


def rdx_tx(
    handle: CodeFlow,
    inter_obj: bytes,
    obj_addr: int,
    qword_addr: int,
    new_qword: int,
    expect: Optional[int] = None,
) -> Generator:
    """Transactionally update a remote qword-guarded object (Table 1)."""
    prior = yield from handle.sync.tx(
        obj_addr, inter_obj, qword_addr, new_qword, expect=expect
    )
    return prior


def rdx_cc_event(handle: CodeFlow, mem_addr: int, length: int = 64) -> Generator:
    """Flush remote cache lines via the event hook (Table 1)."""
    yield from handle.sync.cc_event(mem_addr, length)


def rdx_mutual_excl(handle: CodeFlow, owner_token: int) -> "_LockContext":
    """Sandbox-level mutual exclusion between CPU and RNIC (Table 1).

    Returns a context whose ``acquire()``/``release()`` are processes::

        lock = rdx_mutual_excl(handle, token)
        yield from lock.acquire()
        ...critical section...
        yield from lock.release()
    """
    return _LockContext(handle, owner_token)


class _LockContext:
    """Acquire/release pair over the sandbox lock word."""

    def __init__(self, handle: CodeFlow, owner_token: int):
        self.handle = handle
        self.owner_token = owner_token

    def acquire(self, max_attempts: int = 64) -> Generator:
        attempts = yield from self.handle.sync.lock(
            self.owner_token, max_attempts=max_attempts
        )
        return attempts

    def release(self) -> Generator:
        yield from self.handle.sync.unlock(self.owner_token)


def rdx_broadcast(
    codeflow_group: Sequence[CodeFlow],
    ext_progs: Sequence[BpfProgram],
    hook_name: str,
    dependency_order: Optional[Sequence[int]] = None,
    use_bbu: bool = True,
    verify: bool = True,
    allow_partial: bool = False,
    deadline_us: Optional[float] = None,
) -> Generator:
    """Transactionally broadcast n programs to n nodes (Table 1).

    All-or-nothing by default: a failed target triggers rollback of the
    succeeded ones and raises
    :class:`~repro.errors.BroadcastAborted`; ``allow_partial=True``
    keeps survivors live and marks the result ``degraded`` instead.
    """
    group = CodeFlowGroup(codeflow_group)
    result = yield from group.broadcast(
        ext_progs,
        hook_name,
        dependency_order=dependency_order,
        use_bbu=use_bbu,
        verify=verify,
        allow_partial=allow_partial,
        deadline_us=deadline_us,
    )
    return result
