"""The RDX remote control plane (Fig 1b / Fig 3).

Consolidates everything node-local agents used to do -- validation,
JIT compilation, linking, state access -- onto a dedicated server,
and drives targets exclusively through one-sided RDMA.

Key property from §3.2: **validate once, deploy anywhere**.  The
compile cache is keyed by (program tag, architecture); repeat
deployments of a cached program skip both phases entirely, which is
why RDX's injection path contains no verification or JIT cost
(Fig 4b).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro import params
from repro.errors import DeployError, SecurityError
from repro.ebpf.jit import JitBinary, jit_compile
from repro.ebpf.loader import LocalLoader
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.ebpf.verifier import MapGeometry, VerifierStats, verify
from repro.net.topology import Host
from repro.obs import drop_target_series, telemetry_of
from repro.obs.spans import Span
from repro.rdma.mr import AccessFlags
from repro.rdma.verbs import connect_qps, open_device
from repro.sandbox.sandbox import Sandbox
from repro.sim.trace import TraceRecorder
from repro.core.codeflow import CodeFlow
from repro.core.journal import IntentJournal
from repro.core.retry import RetryPolicy
from repro.core.security import Principal, SecurityPolicy
from repro.core.sync import RemoteSync


@dataclass
class RegistryEntry:
    """One validated + compiled program in the filter/program registry."""

    program: BpfProgram
    arch: str
    stats: VerifierStats
    binary: JitBinary
    deploy_count: int = 0


class RdxControlPlane:
    """The centralized authority overseeing extension lifecycles."""

    def __init__(
        self,
        host: Host,
        policy: Optional[SecurityPolicy] = None,
        trace: Optional[TraceRecorder] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[IntentJournal] = None,
        shard: str = "",
    ):
        self.host = host
        self.sim = host.sim
        #: Shard name when this plane owns one partition of a larger
        #: group (see :mod:`repro.core.shard`); also the aggregation
        #: key metric sites collapse per-target labels to when
        #: :data:`repro.params.RDX_OBS_TARGET_LABELS` is off.
        self.shard = shard
        self.policy = policy or SecurityPolicy.permissive()
        self.trace = trace or TraceRecorder(enabled=False)
        #: Durable intent journal (WAL).  Pass a prior incarnation's
        #: journal to inherit its history; see
        #: :func:`repro.core.reconcile.resume_control_plane`.
        self.journal = journal if journal is not None else IntentJournal()
        #: This incarnation's deployment epoch -- strictly above every
        #: epoch in the journal, stamped into each target's control
        #: block and used as a fencing token on every mutation.
        self.epoch = self.journal.claim_epoch()
        #: True once :meth:`crash` has run; a crashed incarnation
        #: abandons all in-flight work mid-step (no cleanup).
        self.crashed = False
        #: Per-instance txn-token source.  This used to be a module
        #: global, so token streams leaked across control planes and
        #: across runs in one process -- a determinism bug.  Qualifying
        #: tokens by epoch keeps them unique across incarnations too.
        self._token_source = itertools.count(0xBEEF_0001)
        #: Transport retry policy inherited by every CodeFlow's sync
        #: layer: transient faults (flaky links, slow-to-ACK targets)
        #: are absorbed with jittered backoff inside each one-sided op,
        #: so ``inject`` and friends only see *persistent* failures.
        self.retry = retry or RetryPolicy()
        self.obs = telemetry_of(host.sim)
        self._verbs = open_device(host)
        self._pd = self._verbs.alloc_pd()
        self._cq = self._verbs.create_cq()
        #: (tag, arch) -> RegistryEntry; the §3.2 compile cache.
        self.registry: dict[tuple[str, str], RegistryEntry] = {}
        #: (tag, arch) -> in-flight compile event.  Single-flight dedup:
        #: the first miss becomes the leader and everyone else waits on
        #: its event instead of duplicating validate+JIT.
        self._inflight: dict[tuple[str, str], object] = {}
        #: (code CRC, arch, GOT-layout fingerprint) -> linked JitBinary.
        #: Targets with identical layouts skip per-relocation rewriting
        #: entirely (see :meth:`CodeFlow.link_code`).
        self.linked_images: dict[tuple, JitBinary] = {}
        #: Optional warm linked-image pool (installed by
        #: :class:`repro.serve.DeployService`).  A warm hit resolves a
        #: deploy to a pre-linked image by (tag, arch, GOT-layout
        #: fingerprint) alone -- validate, JIT, *and* link are skipped.
        self.warm_pool = None
        self.codeflows: list[CodeFlow] = []
        self.validations_run = 0
        self.compiles_run = 0
        self.cache_hits = 0
        self.cache_evictions = 0
        self.prepare_coalesced = 0
        self.link_cache_hits = 0
        self.link_cache_misses = 0

    # -- incarnation lifecycle -------------------------------------------------

    def _mint_txn(self, op: str) -> str:
        """Journal transaction token, unique across incarnations."""
        return f"{op}-{self.epoch}.{next(self._token_source):x}"

    def _check_alive(self) -> None:
        if self.crashed:
            raise DeployError("control plane incarnation has crashed")

    def crash(self) -> None:
        """Model a hard control-plane crash.

        In-flight generator processes must be interrupted *by the
        caller* (the simulator cannot know which processes belong to
        this incarnation); this flag makes sure no cleanup path --
        broadcast's bubble-lowering finally block, abort rollbacks --
        runs on behalf of a dead process.  Whatever half-applied state
        the crash strands on targets is the reconciler's problem.
        """
        self.crashed = True
        self.trace.record(self.sim.now, "rdx.control.crash", epoch=self.epoch)
        self.obs.counter("rdx.control.crashes").inc()
        if params.RDX_OBS:
            # Black-box write-out: snapshot the flight recorder (recent
            # spans + metric deltas + still-open spans) into the durable
            # WAL, where the next incarnation -- or an operator running
            # ``python -m repro.cli blackbox`` -- can read what the dead
            # incarnation was doing.
            self.journal.record_flight(
                self.epoch,
                self.obs.flight.snapshot(self.obs.tracer.open_spans),
            )

    # -- rdx_create_codeflow ---------------------------------------------------

    def create_codeflow(
        self, sandbox: Sandbox, principal: Optional[Principal] = None
    ) -> Generator:
        """Bind a CodeFlow to ``sandbox``; one-time per-target setup.

        Wires a QP pair to the target RNIC, then pulls the sandbox's
        global context (GOT snapshot) over RDMA so linking can happen
        remotely.  Returns the :class:`CodeFlow`.
        """
        self._check_alive()
        self.policy.check(principal, "create_codeflow", sandbox.name)
        if sandbox.ctx_manifest is None:
            raise DeployError(
                f"{sandbox.name}: management stubs not registered "
                "(run ctx_register first)"
            )
        manifest = sandbox.ctx_manifest

        with self.obs.span("rdx.create", target=sandbox.name):
            target_ctx = open_device(sandbox.host)
            target_pd_qp = target_ctx.create_qp(
                _pd_of(sandbox), target_ctx.create_cq()
            )
            local_qp = self._verbs.create_qp(self._pd, self._cq)
            connect_qps(local_qp, target_pd_qp)
            sync = RemoteSync(
                self.sim, local_qp, manifest.rkey, sandbox, retry=self.retry
            )

            # Stub rendezvous + GOT snapshot read.
            yield self.sim.timeout(params.RDX_STUB_RENDEZVOUS_US)
            got_size = len(manifest.got_layout) * 8
            if got_size:
                yield from sync.read(manifest.got_addr, got_size)

            codeflow = CodeFlow(
                control_plane=self,
                sandbox=sandbox,
                sync=sync,
                helper_addresses=manifest.helper_addresses,
            )
            codeflow._qp_pair = (
                (self._verbs, local_qp), (target_ctx, target_pd_qp)
            )
            # Stamp this incarnation's epoch into the target's control
            # block; refuses (StaleEpochError) if a newer incarnation
            # already owns the target.
            yield from codeflow.stamp_epoch(self.epoch)
        self.codeflows.append(codeflow)
        self.trace.record(
            self.sim.now, "rdx.codeflow.created", target=sandbox.name
        )
        return codeflow

    # -- rdx_validate_code -------------------------------------------------------

    def validate_code(
        self,
        program: BpfProgram,
        maps: Sequence[BpfMap] = (),
        ctx_size: int = 256,
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """Remote validation on the control plane's own CPU (§3.2).

        Dispatches to the right toolchain per extension family (eBPF
        register machine vs Wasm/UDF stack machine).
        """
        from repro.wasm.module import WasmModule
        from repro.wasm.validator import wasm_validate

        self.policy.check(principal, "validate", program.name)
        self.policy.check_program_limits(program)
        with self.obs.span(
            "rdx.validate", parent=parent_span,
            program=program.name, insns=len(program.insns),
        ):
            if isinstance(program, WasmModule):
                stats = wasm_validate(program)
                cost = (
                    params.verify_cost_us(len(program.insns))
                    * params.WASM_COMPILE_FACTOR
                )
            else:
                geometry = {
                    slot: MapGeometry(m.key_size, m.value_size)
                    for slot, m in enumerate(maps)
                }
                stats = verify(program, geometry, ctx_size=ctx_size)
                cost = params.verify_cost_us(len(program.insns))
            cost *= params.RDX_CONTROL_COMPILE_FACTOR
            yield from self.host.cpu.run(cost)
        self.obs.histogram("rdx.validate.cpu_us").observe(cost)
        self.validations_run += 1
        return stats

    # -- rdx_JIT_compile_code -------------------------------------------------------

    def jit_compile_code(
        self,
        program: BpfProgram,
        arch: str = "x86_64",
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """Cross-architecture JIT on the control plane (§3.2)."""
        from repro.wasm.compiler import wasm_compile
        from repro.wasm.module import WasmModule

        self.policy.check(principal, "compile", program.name)
        with self.obs.span(
            "rdx.jit", parent=parent_span, program=program.name, arch=arch
        ):
            if isinstance(program, WasmModule):
                binary = wasm_compile(program, arch=arch)
                cost = (
                    params.jit_cost_us(len(program.insns))
                    * params.WASM_COMPILE_FACTOR
                )
            else:
                binary = jit_compile(program, arch=arch)
                cost = params.jit_cost_us(len(program.insns))
            cost *= params.RDX_CONTROL_COMPILE_FACTOR
            yield from self.host.cpu.run(cost)
        self.obs.histogram("rdx.jit.cpu_us").observe(cost)
        self.compiles_run += 1
        return binary

    # -- registry (validate once, deploy anywhere) ------------------------------------

    def prepare(
        self,
        program: BpfProgram,
        maps: Sequence[BpfMap] = (),
        arch: str = "x86_64",
        ctx_size: int = 256,
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """Validate + compile with caching; returns a RegistryEntry.

        Concurrent misses on one key coalesce: the first caller runs
        validate+JIT (the *leader*); everyone else parks on the
        in-flight event and receives the same entry -- N parallel
        injects of one program cost exactly one compile.  The registry
        used to be written only after the compile generator finished,
        so two concurrent misses both paid the full pipeline.  A
        leader failure propagates to every waiter (same error a solo
        caller would see) and clears the in-flight slot so a later
        retry can compile fresh.
        """
        key = (program.tag(), arch)
        entry = self.registry.get(key)
        if entry is not None:
            self.cache_hits += 1
            self.obs.counter("rdx.cache.hit").inc()
            # LRU touch: dict ordering doubles as the recency list.
            self.registry[key] = self.registry.pop(key)
            return entry
        pending = self._inflight.get(key)
        if pending is not None:
            self.prepare_coalesced += 1
            self.obs.counter("rdx.prepare.coalesced").inc()
            entry = yield pending
            return entry
        self.obs.counter("rdx.cache.miss").inc()
        done = self.sim.event()
        self._inflight[key] = done
        try:
            stats = yield from self.validate_code(
                program, maps, ctx_size=ctx_size, principal=principal,
                parent_span=parent_span,
            )
            binary = yield from self.jit_compile_code(
                program, arch=arch, principal=principal, parent_span=parent_span
            )
        except BaseException as err:
            self._inflight.pop(key, None)
            done.fail(err)
            raise
        entry = RegistryEntry(program=program, arch=arch, stats=stats, binary=binary)
        self.registry[key] = entry
        while len(self.registry) > params.RDX_REGISTRY_CAP:
            victim = next(iter(self.registry))
            del self.registry[victim]
            self.cache_evictions += 1
            self.obs.counter("rdx.cache.evict").inc()
        self._inflight.pop(key, None)
        done.succeed(entry)
        return entry

    def prepare_for(
        self,
        codeflow: CodeFlow,
        program: BpfProgram,
        maps: Sequence[BpfMap] = (),
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """``prepare`` with map geometry resolved against one target.

        Geometry comes from the XStates already deployed on the
        target (the ext_spec of rdx_create_codeflow) when the caller
        does not supply live maps.
        """
        if not maps and getattr(program, "map_names", ()):
            maps = [
                _geometry_proxy(codeflow, name) for name in program.map_names
            ]
        entry = yield from self.prepare(
            program, maps, arch=codeflow.manifest.arch, principal=principal,
            parent_span=parent_span,
        )
        return entry

    # -- one-call convenience ----------------------------------------------------------

    def inject(
        self,
        codeflow: CodeFlow,
        program: BpfProgram,
        hook_name: str,
        maps: Sequence[BpfMap] = (),
        principal: Optional[Principal] = None,
        retain_history: bool = True,
        parent_span: Optional[Span] = None,
        record_intent: bool = True,
        fenced: bool = False,
    ) -> Generator:
        """prepare -> link -> deploy; returns the DeployReport.

        Unless ``record_intent`` is off (broadcast journals at the
        transaction level instead), the deploy is WAL-journaled:
        INTEND before any target byte moves, COMMIT only after the
        hook flip lands.  A crash between the two leaves an in-flight
        record the reconciler cleans up.  ``fenced`` is passed through
        to :meth:`CodeFlow.deploy_prog` -- a broadcast leg that fenced
        while raising its bubble skips the duplicate epoch read.
        """
        self._check_alive()
        self.policy.check(principal, "deploy", codeflow.sandbox.name)
        txn = None
        tag = program.tag()
        if record_intent:
            self.journal.record_program(program)
            txn = self._mint_txn("deploy")
            self.journal.begin(
                txn, "deploy", self.epoch,
                target=codeflow.sandbox.name, hook=hook_name,
                name=program.name, tag=tag,
            )
        entry = None
        try:
            with self.obs.span(
                "rdx.inject", parent=parent_span,
                program=program.name, target=codeflow.sandbox.name,
            ) as span:
                # Warm path: a pool hit hands back a pre-linked image
                # certified (by re-fingerprinting its relocations) to
                # be byte-correct for this target's current layout --
                # validate+JIT+link never run, and the deploy rides the
                # pipelined chain directly.
                linked = None
                if self.warm_pool is not None and params.RDX_PIPELINED_DEPLOY:
                    linked = yield from self.warm_pool.lookup(
                        codeflow, program, parent_span=span
                    )
                link_us = 0.0
                if linked is None:
                    entry = yield from self.prepare_for(
                        codeflow, program, maps=maps, principal=principal,
                        parent_span=span,
                    )
                    if txn is not None:
                        self.journal.phase(txn, "prepared")
                    mark = self.sim.now
                    linked = yield from codeflow.link_code(
                        entry.binary, parent_span=span
                    )
                    link_us = self.sim.now - mark
                elif txn is not None:
                    self.journal.phase(txn, "prepared")
                report = yield from codeflow.deploy_prog(
                    program, linked, hook_name, retain_history=retain_history,
                    parent_span=span, fenced=fenced,
                )
                report.warm = entry is None
                if entry is not None and self.warm_pool is not None:
                    # Cold deploy completed: let the pool count the
                    # (tag, arch, layout) and admit it once popular.
                    self.warm_pool.note_deploy(program, codeflow, entry.binary)
        except BaseException as err:
            if txn is not None and not self.crashed:
                self.journal.abort(txn, reason=str(err))
            raise
        if txn is not None:
            detail = dict(
                target=codeflow.sandbox.name, hook=hook_name,
                name=program.name, tag=tag,
            )
            if report.mode == "delta":
                # Provenance: which resident image the delta was
                # computed against.  A restarted control plane (or an
                # auditor) can tell a delta-written extent from a
                # fully staged one -- the bytes at code_addr are only
                # as good as the baseline they were diffed over.
                detail["deploy"] = {
                    "mode": "delta",
                    "base_addr": report.code_addr,
                    "base_version": report.delta_base_version,
                    "chunks": report.delta_chunks,
                    "bytes_moved": report.bytes_moved,
                }
            self.journal.commit(txn, **detail)
        if params.RDX_OBS:
            # Checkpoint metric deltas into the flight ring at commit
            # boundaries, so a later crash snapshot carries the counter
            # movement of the last few lifecycle ops.
            self.obs.flight.note_metrics(self.obs.registry)
        report.link_us = link_us
        report.total_us += link_us
        if entry is not None:
            entry.deploy_count += 1
        return report

    # -- teardown ----------------------------------------------------------------

    def close_codeflow(self, codeflow: CodeFlow) -> None:
        """Tear down a CodeFlow: release its QP pair, drop the handle.

        Local bookkeeping only -- no remote bytes move, so the target
        keeps running whatever is deployed.  Use :meth:`CodeFlow.detach`
        first for a clean remote teardown.
        """
        if codeflow not in self.codeflows:
            raise DeployError(
                f"codeflow for {codeflow.sandbox.name} is not open "
                "on this control plane"
            )
        codeflow.close()
        self.codeflows.remove(codeflow)
        # Retire the target's metric series with its handle: a
        # long-lived plane churning through targets must not
        # accumulate dead per-target series (no-op when per-target
        # labels are aggregated away -- nothing was ever emitted).
        drop_target_series(self.obs.registry, codeflow.sandbox.name)
        self.trace.record(
            self.sim.now, "rdx.codeflow.closed", target=codeflow.sandbox.name
        )


class _GeometryOnly:
    """Stand-in carrying just the key/value sizes the verifier needs."""

    def __init__(self, key_size: int, value_size: int):
        self.key_size = key_size
        self.value_size = value_size


def _geometry_proxy(codeflow: CodeFlow, name: str) -> _GeometryOnly:
    handle = codeflow.scratchpad.by_name(name)
    if handle is not None:
        return _GeometryOnly(handle.spec.key_size, handle.spec.value_size)
    symbol = codeflow.sandbox.got.lookup(name)
    if symbol is not None and 0 <= symbol.token < len(codeflow.sandbox.maps):
        live = codeflow.sandbox.maps[symbol.token]
        return _GeometryOnly(live.key_size, live.value_size)
    raise DeployError(
        f"program references map {name!r} but no XState of that name is "
        f"deployed on {codeflow.sandbox.name} (deploy_xstate first)"
    )


def _pd_of(sandbox: Sandbox):
    """The PD the sandbox registered its MR under (boot-time state)."""
    if sandbox.mr is None:
        raise DeployError(f"{sandbox.name}: no registered MR")
    pd = getattr(sandbox, "_boot_pd", None)
    if pd is None:
        raise DeployError(f"{sandbox.name}: boot PD missing")
    return pd
