"""The RDX remote control plane (Fig 1b / Fig 3).

Consolidates everything node-local agents used to do -- validation,
JIT compilation, linking, state access -- onto a dedicated server,
and drives targets exclusively through one-sided RDMA.

Key property from §3.2: **validate once, deploy anywhere**.  The
compile cache is keyed by (program tag, architecture); repeat
deployments of a cached program skip both phases entirely, which is
why RDX's injection path contains no verification or JIT cost
(Fig 4b).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro import params
from repro.errors import DeployError, SecurityError
from repro.ebpf.jit import JitBinary, jit_compile
from repro.ebpf.loader import LocalLoader
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import BpfProgram
from repro.ebpf.verifier import MapGeometry, VerifierStats, verify
from repro.net.topology import Host
from repro.obs import telemetry_of
from repro.obs.spans import Span
from repro.rdma.mr import AccessFlags
from repro.rdma.verbs import connect_qps, open_device
from repro.sandbox.sandbox import Sandbox
from repro.sim.trace import TraceRecorder
from repro.core.codeflow import CodeFlow
from repro.core.retry import RetryPolicy
from repro.core.security import Principal, SecurityPolicy
from repro.core.sync import RemoteSync

_token_source = itertools.count(0xBEEF_0001)


@dataclass
class RegistryEntry:
    """One validated + compiled program in the filter/program registry."""

    program: BpfProgram
    arch: str
    stats: VerifierStats
    binary: JitBinary
    deploy_count: int = 0


class RdxControlPlane:
    """The centralized authority overseeing extension lifecycles."""

    def __init__(
        self,
        host: Host,
        policy: Optional[SecurityPolicy] = None,
        trace: Optional[TraceRecorder] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.sim = host.sim
        self.policy = policy or SecurityPolicy.permissive()
        self.trace = trace or TraceRecorder(enabled=False)
        #: Transport retry policy inherited by every CodeFlow's sync
        #: layer: transient faults (flaky links, slow-to-ACK targets)
        #: are absorbed with jittered backoff inside each one-sided op,
        #: so ``inject`` and friends only see *persistent* failures.
        self.retry = retry or RetryPolicy()
        self.obs = telemetry_of(host.sim)
        self._verbs = open_device(host)
        self._pd = self._verbs.alloc_pd()
        self._cq = self._verbs.create_cq()
        #: (tag, arch) -> RegistryEntry; the §3.2 compile cache.
        self.registry: dict[tuple[str, str], RegistryEntry] = {}
        self.codeflows: list[CodeFlow] = []
        self.validations_run = 0
        self.compiles_run = 0
        self.cache_hits = 0

    # -- rdx_create_codeflow ---------------------------------------------------

    def create_codeflow(
        self, sandbox: Sandbox, principal: Optional[Principal] = None
    ) -> Generator:
        """Bind a CodeFlow to ``sandbox``; one-time per-target setup.

        Wires a QP pair to the target RNIC, then pulls the sandbox's
        global context (GOT snapshot) over RDMA so linking can happen
        remotely.  Returns the :class:`CodeFlow`.
        """
        self.policy.check(principal, "create_codeflow", sandbox.name)
        if sandbox.ctx_manifest is None:
            raise DeployError(
                f"{sandbox.name}: management stubs not registered "
                "(run ctx_register first)"
            )
        manifest = sandbox.ctx_manifest

        with self.obs.span("rdx.create", target=sandbox.name):
            target_ctx = open_device(sandbox.host)
            target_pd_qp = target_ctx.create_qp(
                _pd_of(sandbox), target_ctx.create_cq()
            )
            local_qp = self._verbs.create_qp(self._pd, self._cq)
            connect_qps(local_qp, target_pd_qp)
            sync = RemoteSync(
                self.sim, local_qp, manifest.rkey, sandbox, retry=self.retry
            )

            # Stub rendezvous + GOT snapshot read.
            yield self.sim.timeout(params.RDX_STUB_RENDEZVOUS_US)
            got_size = len(manifest.got_layout) * 8
            if got_size:
                yield from sync.read(manifest.got_addr, got_size)

            codeflow = CodeFlow(
                control_plane=self,
                sandbox=sandbox,
                sync=sync,
                helper_addresses=manifest.helper_addresses,
            )
        self.codeflows.append(codeflow)
        self.trace.record(
            self.sim.now, "rdx.codeflow.created", target=sandbox.name
        )
        return codeflow

    # -- rdx_validate_code -------------------------------------------------------

    def validate_code(
        self,
        program: BpfProgram,
        maps: Sequence[BpfMap] = (),
        ctx_size: int = 256,
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """Remote validation on the control plane's own CPU (§3.2).

        Dispatches to the right toolchain per extension family (eBPF
        register machine vs Wasm/UDF stack machine).
        """
        from repro.wasm.module import WasmModule
        from repro.wasm.validator import wasm_validate

        self.policy.check(principal, "validate", program.name)
        self.policy.check_program_limits(program)
        with self.obs.span(
            "rdx.validate", parent=parent_span,
            program=program.name, insns=len(program.insns),
        ):
            if isinstance(program, WasmModule):
                stats = wasm_validate(program)
                cost = (
                    params.verify_cost_us(len(program.insns))
                    * params.WASM_COMPILE_FACTOR
                )
            else:
                geometry = {
                    slot: MapGeometry(m.key_size, m.value_size)
                    for slot, m in enumerate(maps)
                }
                stats = verify(program, geometry, ctx_size=ctx_size)
                cost = params.verify_cost_us(len(program.insns))
            cost *= params.RDX_CONTROL_COMPILE_FACTOR
            yield from self.host.cpu.run(cost)
        self.obs.histogram("rdx.validate.cpu_us").observe(cost)
        self.validations_run += 1
        return stats

    # -- rdx_JIT_compile_code -------------------------------------------------------

    def jit_compile_code(
        self,
        program: BpfProgram,
        arch: str = "x86_64",
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """Cross-architecture JIT on the control plane (§3.2)."""
        from repro.wasm.compiler import wasm_compile
        from repro.wasm.module import WasmModule

        self.policy.check(principal, "compile", program.name)
        with self.obs.span(
            "rdx.jit", parent=parent_span, program=program.name, arch=arch
        ):
            if isinstance(program, WasmModule):
                binary = wasm_compile(program, arch=arch)
                cost = (
                    params.jit_cost_us(len(program.insns))
                    * params.WASM_COMPILE_FACTOR
                )
            else:
                binary = jit_compile(program, arch=arch)
                cost = params.jit_cost_us(len(program.insns))
            cost *= params.RDX_CONTROL_COMPILE_FACTOR
            yield from self.host.cpu.run(cost)
        self.obs.histogram("rdx.jit.cpu_us").observe(cost)
        self.compiles_run += 1
        return binary

    # -- registry (validate once, deploy anywhere) ------------------------------------

    def prepare(
        self,
        program: BpfProgram,
        maps: Sequence[BpfMap] = (),
        arch: str = "x86_64",
        ctx_size: int = 256,
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """Validate + compile with caching; returns a RegistryEntry."""
        key = (program.tag(), arch)
        entry = self.registry.get(key)
        if entry is not None:
            self.cache_hits += 1
            self.obs.counter("rdx.cache.hit").inc()
            return entry
        self.obs.counter("rdx.cache.miss").inc()
        stats = yield from self.validate_code(
            program, maps, ctx_size=ctx_size, principal=principal,
            parent_span=parent_span,
        )
        binary = yield from self.jit_compile_code(
            program, arch=arch, principal=principal, parent_span=parent_span
        )
        entry = RegistryEntry(program=program, arch=arch, stats=stats, binary=binary)
        self.registry[key] = entry
        return entry

    def prepare_for(
        self,
        codeflow: CodeFlow,
        program: BpfProgram,
        maps: Sequence[BpfMap] = (),
        principal: Optional[Principal] = None,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """``prepare`` with map geometry resolved against one target.

        Geometry comes from the XStates already deployed on the
        target (the ext_spec of rdx_create_codeflow) when the caller
        does not supply live maps.
        """
        if not maps and getattr(program, "map_names", ()):
            maps = [
                _geometry_proxy(codeflow, name) for name in program.map_names
            ]
        entry = yield from self.prepare(
            program, maps, arch=codeflow.manifest.arch, principal=principal,
            parent_span=parent_span,
        )
        return entry

    # -- one-call convenience ----------------------------------------------------------

    def inject(
        self,
        codeflow: CodeFlow,
        program: BpfProgram,
        hook_name: str,
        maps: Sequence[BpfMap] = (),
        principal: Optional[Principal] = None,
        retain_history: bool = True,
        parent_span: Optional[Span] = None,
    ) -> Generator:
        """prepare -> link -> deploy; returns the DeployReport."""
        self.policy.check(principal, "deploy", codeflow.sandbox.name)
        with self.obs.span(
            "rdx.inject", parent=parent_span,
            program=program.name, target=codeflow.sandbox.name,
        ) as span:
            entry = yield from self.prepare_for(
                codeflow, program, maps=maps, principal=principal,
                parent_span=span,
            )
            mark = self.sim.now
            linked = yield from codeflow.link_code(entry.binary, parent_span=span)
            link_us = self.sim.now - mark
            report = yield from codeflow.deploy_prog(
                program, linked, hook_name, retain_history=retain_history,
                parent_span=span,
            )
        report.link_us = link_us
        report.total_us += link_us
        entry.deploy_count += 1
        return report


class _GeometryOnly:
    """Stand-in carrying just the key/value sizes the verifier needs."""

    def __init__(self, key_size: int, value_size: int):
        self.key_size = key_size
        self.value_size = value_size


def _geometry_proxy(codeflow: CodeFlow, name: str) -> _GeometryOnly:
    handle = codeflow.scratchpad.by_name(name)
    if handle is not None:
        return _GeometryOnly(handle.spec.key_size, handle.spec.value_size)
    symbol = codeflow.sandbox.got.lookup(name)
    if symbol is not None and 0 <= symbol.token < len(codeflow.sandbox.maps):
        live = codeflow.sandbox.maps[symbol.token]
        return _GeometryOnly(live.key_size, live.value_size)
    raise DeployError(
        f"program references map {name!r} but no XState of that name is "
        f"deployed on {codeflow.sandbox.name} (deploy_xstate first)"
    )


def _pd_of(sandbox: Sandbox):
    """The PD the sandbox registered its MR under (boot-time state)."""
    if sandbox.mr is None:
        raise DeployError(f"{sandbox.name}: no registered MR")
    pd = getattr(sandbox, "_boot_pd", None)
    if pd is None:
        raise DeployError(f"{sandbox.name}: boot PD missing")
    return pd
