"""Lease-based target health detection over one-sided reads.

RDMA completions are not delivery guarantees, and the absence of a
completion is not a death certificate -- the initiator cannot tell a
crashed host from a slow link.  So health is a *lease*: each target
holds a lease that a successful heartbeat read renews.  Miss one
renewal and the target turns SUSPECT; miss enough and it is declared
DEAD.  A single successful read at any point snaps it back to ALIVE --
truth comes from reading remote state, never from local bookkeeping.

The heartbeat is an 8-byte one-sided READ of the sandbox control
block: no target CPU, no agent, and the same fencing word the epoch
protocol uses, so a probe doubles as a stale-epoch tripwire.

Consumers:

* ``rdx_broadcast`` fails SUSPECT/DEAD legs *immediately* instead of
  burning a full per-leg deadline on each one (graceful degradation
  around known-sick targets);
* the anti-entropy reconciler skips DEAD targets and schedules them
  for repair when they return.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro import params
from repro.errors import ReproError
from repro.obs import target_label, telemetry_of
from repro.core.codeflow import CodeFlow
from repro.core.retry import RetryPolicy


class TargetHealth(enum.Enum):
    """Lease states, ordered by decreasing confidence."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class LeaseState:
    """One target's lease bookkeeping."""

    target: str
    health: TargetHealth = TargetHealth.ALIVE
    #: Simulated time of the last successful heartbeat.
    renewed_us: float = 0.0
    consecutive_misses: int = 0
    probes: int = 0
    transitions: int = 0


class HealthDetector:
    """Per-target ALIVE -> SUSPECT -> DEAD lease tracking.

    ``suspect_after`` / ``dead_after`` are consecutive-miss thresholds;
    the probe itself is bounded by a tight retry policy (one transport
    attempt -- the *lease*, not the transport layer, owns patience
    here, so a probe against a dead host costs one RDMA timeout, not a
    full backoff ladder).
    """

    def __init__(
        self,
        codeflows,
        interval_us: float = params.HEALTH_PROBE_INTERVAL_US,
        suspect_after: int = params.HEALTH_SUSPECT_MISSES,
        dead_after: int = params.HEALTH_DEAD_MISSES,
        scraper=None,
    ):
        if suspect_after < 1 or dead_after < suspect_after:
            raise ValueError(
                f"need 1 <= suspect_after <= dead_after, got "
                f"{suspect_after}/{dead_after}"
            )
        self.codeflows = {cf.sandbox.name: cf for cf in codeflows}
        #: target -> owning shard (metric aggregation key when
        #: per-target labels are off; see repro.obs.cardinality).
        self._shards = {
            name: getattr(cf.control_plane, "shard", "")
            for name, cf in self.codeflows.items()
        }
        self.sim = next(iter(self.codeflows.values())).sim
        self.obs = telemetry_of(self.sim)
        self.interval_us = interval_us
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.leases: dict[str, LeaseState] = {
            name: LeaseState(target=name, renewed_us=self.sim.now)
            for name in self.codeflows
        }
        #: Single-attempt probe policy: misses are lease business.
        self._probe_retry = RetryPolicy(max_attempts=1, jitter_frac=0.0)
        #: Optional :class:`repro.obs.scrape.TelemetryScraper` invoked
        #: after each successful probe -- telemetry freshness rides
        #: the lease interval over the already-warm QP instead of
        #: owning a timer wheel of its own.
        self.scraper = scraper

    # -- queries ---------------------------------------------------------

    def state_of(self, target: str) -> TargetHealth:
        return self.leases[target].health

    def lease_of(self, target: str) -> LeaseState:
        return self.leases[target]

    def alive(self) -> list[str]:
        return sorted(
            name
            for name, lease in self.leases.items()
            if lease.health is TargetHealth.ALIVE
        )

    def unhealthy(self) -> list[str]:
        return sorted(
            name
            for name, lease in self.leases.items()
            if lease.health is not TargetHealth.ALIVE
        )

    # -- probing ---------------------------------------------------------

    def probe(self, target: str) -> Generator:
        """One heartbeat: read the target's control block; returns health.

        Success renews the lease (any state snaps back to ALIVE); a
        failed read is a miss that walks ALIVE -> SUSPECT -> DEAD.
        """
        codeflow = self.codeflows[target]
        lease = self.leases[target]
        lease.probes += 1
        self.obs.counter(
            "rdx.health.probes",
            target=target_label(target, self._shards[target]),
        ).inc()
        saved_retry, codeflow.sync.retry = (
            codeflow.sync.retry, self._probe_retry
        )
        try:
            with self.obs.span("rdx.health.probe", target=target):
                yield from codeflow.sync.read(
                    codeflow.sandbox.control_addr, 8
                )
        except ReproError:
            self._miss(lease)
        else:
            self._renew(lease)
            if self.scraper is not None and target in getattr(
                self.scraper, "codeflows", {}
            ):
                # Piggyback: the lease just proved the path; scrape
                # the telemetry segment on the same round.  A torn
                # scrape is counted and skipped -- never a lease miss.
                try:
                    yield from self.scraper.scrape(target)
                except ReproError:
                    pass
        finally:
            codeflow.sync.retry = saved_retry
        return lease.health

    def probe_all(self) -> Generator:
        """Heartbeat every target once, in parallel; returns the states.

        With :data:`repro.params.RDX_HEALTH_BATCH_SWEEP` (default) the
        round runs as one batched sweep per detector: every 8-byte
        READ goes out back to back with a single accounting pass at
        the end, instead of N independent probe processes each paying
        a span, a retry-policy swap, and per-probe metric writes.
        Lease semantics, fault-hook consultation, and the scraper
        piggyback are identical on both paths.
        """
        if params.RDX_HEALTH_BATCH_SWEEP and len(self.codeflows) > 1:
            states = yield from self._sweep()
            return states
        probes = [
            self.sim.spawn(self.probe(name), name=f"hb:{name}")
            for name in sorted(self.codeflows)
        ]
        yield self.sim.all_of(probes)
        return {name: lease.health for name, lease in self.leases.items()}

    def _sweep(self) -> Generator:
        """One batched heartbeat sweep over every target.

        The reads still ride each target's own QP (an RC chain cannot
        span QPs), but they are posted by lightweight read-only legs
        under the single-attempt probe policy -- no per-probe span, no
        per-probe retry-ladder bookkeeping -- and the probe counter is
        bumped once per sweep when labels aggregate per shard.
        """
        names = sorted(self.codeflows)
        outcomes: dict[str, bool] = {}
        legs = [
            self.sim.spawn(
                self._sweep_one(name, outcomes), name=f"hb-sweep:{name}"
            )
            for name in names
        ]
        yield self.sim.all_of(legs)
        if params.RDX_OBS_TARGET_LABELS:
            for name in names:
                self.obs.counter("rdx.health.probes", target=name).inc()
        else:
            by_shard: dict[str, int] = {}
            for name in names:
                label = target_label(name, self._shards[name])
                by_shard[label] = by_shard.get(label, 0) + 1
            for label, count in by_shard.items():
                self.obs.counter("rdx.health.probes", target=label).inc(count)
        for name in names:
            lease = self.leases[name]
            lease.probes += 1
            if not outcomes.get(name, False):
                self._miss(lease)
                continue
            self._renew(lease)
            if self.scraper is not None and name in getattr(
                self.scraper, "codeflows", {}
            ):
                # Piggyback, same as the per-probe path: the sweep just
                # proved the path; a torn scrape is never a lease miss.
                try:
                    yield from self.scraper.scrape(name)
                except ReproError:
                    pass
        return {name: lease.health for name, lease in self.leases.items()}

    def _sweep_one(self, name: str, outcomes: dict) -> Generator:
        """One sweep leg: a bare 8-byte read, success recorded locally."""
        codeflow = self.codeflows[name]
        saved_retry, codeflow.sync.retry = (
            codeflow.sync.retry, self._probe_retry
        )
        try:
            yield from codeflow.sync.read(codeflow.sandbox.control_addr, 8)
        except ReproError:
            outcomes[name] = False
        else:
            outcomes[name] = True
        finally:
            codeflow.sync.retry = saved_retry

    def monitor(
        self, duration_us: float, interval_us: Optional[float] = None
    ) -> Generator:
        """Background lease loop: probe every target each interval."""
        interval = interval_us or self.interval_us
        end = self.sim.now + duration_us
        while self.sim.now < end:
            yield self.sim.timeout(interval)
            yield from self.probe_all()
        return {name: lease.health for name, lease in self.leases.items()}

    # -- lease mechanics -------------------------------------------------

    def _renew(self, lease: LeaseState) -> None:
        lease.renewed_us = self.sim.now
        lease.consecutive_misses = 0
        self._transition(lease, TargetHealth.ALIVE)

    def _miss(self, lease: LeaseState) -> None:
        lease.consecutive_misses += 1
        self.obs.counter(
            "rdx.health.misses",
            target=target_label(lease.target, self._shards[lease.target]),
        ).inc()
        if lease.consecutive_misses >= self.dead_after:
            self._transition(lease, TargetHealth.DEAD)
        elif lease.consecutive_misses >= self.suspect_after:
            self._transition(lease, TargetHealth.SUSPECT)

    def _transition(self, lease: LeaseState, health: TargetHealth) -> None:
        if lease.health is health:
            return
        shard = self._shards[lease.target]
        self.obs.counter(
            "rdx.health.transitions",
            target=target_label(lease.target, shard),
            to=health.value,
        ).inc()
        lease.health = health
        lease.transitions += 1
        if params.RDX_OBS_TARGET_LABELS:
            self.obs.gauge("rdx.health.state", target=lease.target).set(
                {"alive": 0, "suspect": 1, "dead": 2}[health.value]
            )
        else:
            # A per-target enum gauge aggregated to one series would be
            # last-writer noise; export shard-level state *occupancy*
            # instead (how many leases sit in each state).
            self._refresh_state_counts(shard)

    def _refresh_state_counts(self, shard: str) -> None:
        label = target_label("", shard)
        counts = {state: 0 for state in TargetHealth}
        for name, lease in self.leases.items():
            if self._shards[name] == shard:
                counts[lease.health] += 1
        for state, count in counts.items():
            self.obs.gauge(
                "rdx.health.state_count", target=label, state=state.value
            ).set(count)
