"""Lease-based target health detection over one-sided reads.

RDMA completions are not delivery guarantees, and the absence of a
completion is not a death certificate -- the initiator cannot tell a
crashed host from a slow link.  So health is a *lease*: each target
holds a lease that a successful heartbeat read renews.  Miss one
renewal and the target turns SUSPECT; miss enough and it is declared
DEAD.  A single successful read at any point snaps it back to ALIVE --
truth comes from reading remote state, never from local bookkeeping.

The heartbeat is an 8-byte one-sided READ of the sandbox control
block: no target CPU, no agent, and the same fencing word the epoch
protocol uses, so a probe doubles as a stale-epoch tripwire.

Consumers:

* ``rdx_broadcast`` fails SUSPECT/DEAD legs *immediately* instead of
  burning a full per-leg deadline on each one (graceful degradation
  around known-sick targets);
* the anti-entropy reconciler skips DEAD targets and schedules them
  for repair when they return.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro import params
from repro.errors import ReproError
from repro.obs import telemetry_of
from repro.core.codeflow import CodeFlow
from repro.core.retry import RetryPolicy


class TargetHealth(enum.Enum):
    """Lease states, ordered by decreasing confidence."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class LeaseState:
    """One target's lease bookkeeping."""

    target: str
    health: TargetHealth = TargetHealth.ALIVE
    #: Simulated time of the last successful heartbeat.
    renewed_us: float = 0.0
    consecutive_misses: int = 0
    probes: int = 0
    transitions: int = 0


class HealthDetector:
    """Per-target ALIVE -> SUSPECT -> DEAD lease tracking.

    ``suspect_after`` / ``dead_after`` are consecutive-miss thresholds;
    the probe itself is bounded by a tight retry policy (one transport
    attempt -- the *lease*, not the transport layer, owns patience
    here, so a probe against a dead host costs one RDMA timeout, not a
    full backoff ladder).
    """

    def __init__(
        self,
        codeflows,
        interval_us: float = params.HEALTH_PROBE_INTERVAL_US,
        suspect_after: int = params.HEALTH_SUSPECT_MISSES,
        dead_after: int = params.HEALTH_DEAD_MISSES,
        scraper=None,
    ):
        if suspect_after < 1 or dead_after < suspect_after:
            raise ValueError(
                f"need 1 <= suspect_after <= dead_after, got "
                f"{suspect_after}/{dead_after}"
            )
        self.codeflows = {cf.sandbox.name: cf for cf in codeflows}
        self.sim = next(iter(self.codeflows.values())).sim
        self.obs = telemetry_of(self.sim)
        self.interval_us = interval_us
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.leases: dict[str, LeaseState] = {
            name: LeaseState(target=name, renewed_us=self.sim.now)
            for name in self.codeflows
        }
        #: Single-attempt probe policy: misses are lease business.
        self._probe_retry = RetryPolicy(max_attempts=1, jitter_frac=0.0)
        #: Optional :class:`repro.obs.scrape.TelemetryScraper` invoked
        #: after each successful probe -- telemetry freshness rides
        #: the lease interval over the already-warm QP instead of
        #: owning a timer wheel of its own.
        self.scraper = scraper

    # -- queries ---------------------------------------------------------

    def state_of(self, target: str) -> TargetHealth:
        return self.leases[target].health

    def lease_of(self, target: str) -> LeaseState:
        return self.leases[target]

    def alive(self) -> list[str]:
        return sorted(
            name
            for name, lease in self.leases.items()
            if lease.health is TargetHealth.ALIVE
        )

    def unhealthy(self) -> list[str]:
        return sorted(
            name
            for name, lease in self.leases.items()
            if lease.health is not TargetHealth.ALIVE
        )

    # -- probing ---------------------------------------------------------

    def probe(self, target: str) -> Generator:
        """One heartbeat: read the target's control block; returns health.

        Success renews the lease (any state snaps back to ALIVE); a
        failed read is a miss that walks ALIVE -> SUSPECT -> DEAD.
        """
        codeflow = self.codeflows[target]
        lease = self.leases[target]
        lease.probes += 1
        self.obs.counter("rdx.health.probes", target=target).inc()
        saved_retry, codeflow.sync.retry = (
            codeflow.sync.retry, self._probe_retry
        )
        try:
            with self.obs.span("rdx.health.probe", target=target):
                yield from codeflow.sync.read(
                    codeflow.sandbox.control_addr, 8
                )
        except ReproError:
            self._miss(lease)
        else:
            self._renew(lease)
            if self.scraper is not None and target in getattr(
                self.scraper, "codeflows", {}
            ):
                # Piggyback: the lease just proved the path; scrape
                # the telemetry segment on the same round.  A torn
                # scrape is counted and skipped -- never a lease miss.
                try:
                    yield from self.scraper.scrape(target)
                except ReproError:
                    pass
        finally:
            codeflow.sync.retry = saved_retry
        return lease.health

    def probe_all(self) -> Generator:
        """Heartbeat every target once, in parallel; returns the states."""
        probes = [
            self.sim.spawn(self.probe(name), name=f"hb:{name}")
            for name in sorted(self.codeflows)
        ]
        yield self.sim.all_of(probes)
        return {name: lease.health for name, lease in self.leases.items()}

    def monitor(
        self, duration_us: float, interval_us: Optional[float] = None
    ) -> Generator:
        """Background lease loop: probe every target each interval."""
        interval = interval_us or self.interval_us
        end = self.sim.now + duration_us
        while self.sim.now < end:
            yield self.sim.timeout(interval)
            yield from self.probe_all()
        return {name: lease.health for name, lease in self.leases.items()}

    # -- lease mechanics -------------------------------------------------

    def _renew(self, lease: LeaseState) -> None:
        lease.renewed_us = self.sim.now
        lease.consecutive_misses = 0
        self._transition(lease, TargetHealth.ALIVE)

    def _miss(self, lease: LeaseState) -> None:
        lease.consecutive_misses += 1
        self.obs.counter("rdx.health.misses", target=lease.target).inc()
        if lease.consecutive_misses >= self.dead_after:
            self._transition(lease, TargetHealth.DEAD)
        elif lease.consecutive_misses >= self.suspect_after:
            self._transition(lease, TargetHealth.SUSPECT)

    def _transition(self, lease: LeaseState, health: TargetHealth) -> None:
        if lease.health is health:
            return
        self.obs.counter(
            "rdx.health.transitions",
            target=lease.target,
            to=health.value,
        ).inc()
        lease.health = health
        lease.transitions += 1
        self.obs.gauge("rdx.health.state", target=lease.target).set(
            {"alive": 0, "suspect": 1, "dead": 2}[health.value]
        )
