"""Workload applications used by the evaluation.

* :mod:`~repro.apps.rediskv` -- a Redis-like in-memory KV server whose
  throughput the agent "tax" (injection + XState polling) degrades by
  ~25% (paper §6).
* :mod:`~repro.apps.serverless` -- warm-pool auto-scaling where filter
  reload is the scale-out bottleneck the RDX migration path removes
  (paper §4).
"""

from repro.apps.rediskv import RedisLikeServer, RedisLoadResult
from repro.apps.serverless import ScaleOutReport, WarmPool

__all__ = [
    "RedisLikeServer",
    "RedisLoadResult",
    "ScaleOutReport",
    "WarmPool",
]
