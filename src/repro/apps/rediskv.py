"""A Redis-like KV server for the agent-tax experiment (paper §6).

The server runs a closed set of worker loops pinned to its host CPU;
throughput is ops retired per second.  In the **agent** deployment the
same host also runs eBPF injections and periodic XState polling (the
"25.3% Redis degradation" channel); in the **RDX** deployment those
move off-host and the workers keep the cores.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from repro import params
from repro.errors import WorkloadError
from repro.net.topology import Host
from repro.sim.core import Simulator


@dataclass
class RedisLoadResult:
    """Outcome of one timed load run."""

    duration_us: float
    ops_done: int
    hits: int
    misses: int

    @property
    def throughput_ops_s(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.ops_done / (self.duration_us / 1e6)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.ops_done if self.ops_done else 0.0


class RedisLikeServer:
    """In-memory KV store with closed-loop worker threads."""

    def __init__(
        self,
        host: Host,
        n_workers: int = 4,
        op_service_us: float = params.REDIS_OP_SERVICE_US,
        keyspace: int = 10_000,
        seed: int = 11,
    ):
        if n_workers < 1:
            raise WorkloadError("need at least one worker")
        self.host = host
        self.sim = host.sim
        self.n_workers = n_workers
        self.op_service_us = op_service_us
        self.keyspace = keyspace
        self._rng = random.Random(seed)
        self._store: dict[int, int] = {}
        self.ops_done = 0
        self.hits = 0
        self.misses = 0

    # -- functional surface -----------------------------------------------

    def set_(self, key: int, value: int) -> None:
        self._store[key % self.keyspace] = value

    def get(self, key: int) -> Optional[int]:
        value = self._store.get(key % self.keyspace)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def __len__(self) -> int:
        return len(self._store)

    # -- timed load ----------------------------------------------------------

    def run_load(
        self, duration_us: float, write_ratio: float = 0.2
    ) -> Generator:
        """Run ``n_workers`` closed loops for ``duration_us``.

        Returns a :class:`RedisLoadResult`.  Each op costs
        ``op_service_us`` of host CPU, so anything else burning that
        CPU (an agent) directly reduces throughput.
        """
        start_ops = self.ops_done
        start_hits, start_misses = self.hits, self.misses
        started = self.sim.now
        workers = [
            self.sim.spawn(
                self._worker(started + duration_us, write_ratio, worker_id),
                name=f"redis-w{worker_id}",
            )
            for worker_id in range(self.n_workers)
        ]
        yield self.sim.all_of(workers)
        return RedisLoadResult(
            duration_us=self.sim.now - started,
            ops_done=self.ops_done - start_ops,
            hits=self.hits - start_hits,
            misses=self.misses - start_misses,
        )

    def _worker(
        self, end_us: float, write_ratio: float, worker_id: int
    ) -> Generator:
        rng = random.Random(worker_id * 7919 + 13)
        while self.sim.now < end_us:
            yield from self.host.cpu.run(self.op_service_us)
            key = rng.randrange(self.keyspace)
            if rng.random() < write_ratio:
                self.set_(key, rng.randrange(1 << 30))
            else:
                self.get(key)
            self.ops_done += 1
