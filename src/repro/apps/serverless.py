"""Warm-pool auto-scaling with extension live migration (paper §4).

Scaling out a pod = (a) spinning up the warm replica and moving
container state over RDMA (fast), plus (b) getting the sidecar's
filters live on the replica.  With a per-pod agent, (b) recompiles
every filter locally -- seconds-scale and the bottleneck; with RDX,
(b) is a CodeFlow migration -- microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from repro import params
from repro.errors import WorkloadError
from repro.core.codeflow import CodeFlow
from repro.core.migration import MigrationManager
from repro.mesh.proxy import SidecarProxy
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.module import WasmModule


@dataclass
class ScaleOutReport:
    """Where the scale-out time went."""

    mode: str
    pod_spawn_us: float
    state_copy_us: float
    filter_reload_us: float

    @property
    def total_us(self) -> float:
        return self.pod_spawn_us + self.state_copy_us + self.filter_reload_us

    @property
    def filter_share(self) -> float:
        """Fraction of scale-out spent reloading filters."""
        return self.filter_reload_us / self.total_us if self.total_us else 0.0


class WarmPool:
    """A pool of pre-booted replica pods awaiting scale-out."""

    def __init__(self, sim: Simulator, replicas: Sequence[SidecarProxy]):
        self.sim = sim
        self._free = list(replicas)
        self.scale_outs: list[ScaleOutReport] = []

    @property
    def available(self) -> int:
        return len(self._free)

    def take_replica(self) -> SidecarProxy:
        if not self._free:
            raise WorkloadError("warm pool exhausted")
        return self._free.pop()

    # -- agent-path scale-out ----------------------------------------------------

    def scale_out_agent(
        self,
        replica: SidecarProxy,
        agent,
        filters: Sequence[WasmModule],
        hook_names: Sequence[str],
        container_state_bytes: int = 4 * 2**20,
    ) -> Generator:
        """Replica + agent-side filter reload (the §4 bottleneck)."""
        mark = self.sim.now
        yield self.sim.timeout(params.SERVERLESS_POD_SPAWN_US)
        pod_spawn = self.sim.now - mark

        mark = self.sim.now
        yield self.sim.timeout(params.rdma_transfer_us(container_state_bytes))
        state_copy = self.sim.now - mark

        mark = self.sim.now
        for module, hook in zip(filters, hook_names):
            yield from agent.inject(module, hook)
        reload_us = self.sim.now - mark

        report = ScaleOutReport(
            mode="agent",
            pod_spawn_us=pod_spawn,
            state_copy_us=state_copy,
            filter_reload_us=reload_us,
        )
        self.scale_outs.append(report)
        return report

    # -- RDX-path scale-out ---------------------------------------------------------

    def scale_out_rdx(
        self,
        src: CodeFlow,
        dst: CodeFlow,
        migration: MigrationManager,
        filter_names: Sequence[str],
        container_state_bytes: int = 4 * 2**20,
    ) -> Generator:
        """Replica + CodeFlow filter migration (microseconds)."""
        mark = self.sim.now
        yield self.sim.timeout(params.SERVERLESS_POD_SPAWN_US)
        pod_spawn = self.sim.now - mark

        mark = self.sim.now
        yield self.sim.timeout(params.rdma_transfer_us(container_state_bytes))
        state_copy = self.sim.now - mark

        mark = self.sim.now
        for name in filter_names:
            yield from migration.migrate(src, dst, name)
        reload_us = self.sim.now - mark

        report = ScaleOutReport(
            mode="rdx",
            pod_spawn_us=pod_spawn,
            state_copy_us=state_copy,
            filter_reload_us=reload_us,
        )
        self.scale_outs.append(report)
        return report
