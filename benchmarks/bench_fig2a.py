"""Regenerates Fig 2a: agent eBPF injection overhead vs program size.

Paper series: millisecond-level injection even at 1.3K instructions,
growing superlinearly to ~100+ ms at 80K; verification + JIT are
90+% of the total (§2.2 Obs 1).
"""

from repro.exp.fig2a import PAPER, run_fig2a
from repro.exp.harness import format_table

SIZES = (1_300, 11_000, 26_000, 49_000, 76_000)


def test_bench_fig2a(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig2a(sizes=SIZES, repeats=3), rounds=1, iterations=1
    )
    rows = [
        (
            point.insn_size,
            point.mean_inject_us / 1000.0,
            f"{point.verify_jit_share * 100:.1f}%",
        )
        for point in result.points
    ]
    print()
    print(
        format_table(
            "Fig 2a -- agent injection overhead vs instruction size",
            ["insns", "inject (ms)", "verify+JIT share"],
            rows,
            note=f"paper: {PAPER['claim']}; share >= 90%",
        )
    )
    assert result.points[0].mean_inject_us >= 1_000
    assert result.points[-1].mean_inject_us > result.points[0].mean_inject_us * 20
    assert all(p.verify_jit_share >= PAPER["verify_jit_share_min"] for p in result.points)
