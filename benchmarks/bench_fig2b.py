"""Regenerates Fig 2b: update inconsistency across the four paper apps.

Paper series: apps of 4/11/17/33 microservices; eBPF and Wasm rollouts
both leave inconsistency windows growing with app size, reaching
hundreds of ms below 20 microservices (§2.2 Obs 2).
"""

from repro.exp.fig2b import PAPER, run_fig2b
from repro.exp.harness import format_table


def test_bench_fig2b(benchmark):
    result = benchmark.pedantic(run_fig2b, rounds=1, iterations=1)
    rows = [
        (
            point.app,
            point.n_services,
            point.family,
            point.window_us / 1000.0,
            point.update_interval_us / 1000.0,
            point.violations,
            point.mixed_requests,
        )
        for point in result.points
    ]
    print()
    print(
        format_table(
            "Fig 2b -- rollout inconsistency window per app",
            ["app", "services", "family", "window (ms)", "interval (ms)",
             "violations", "mixed reqs"],
            rows,
            note=f"paper: {PAPER['claim']}",
        )
    )
    for family in ("ebpf", "wasm"):
        series = [ms for _n, ms in result.series(family)]
        assert series == sorted(series)  # grows with app size
    # Hundreds of ms below 20 services (app3 = 17 services).
    app3 = [p for p in result.points if p.n_services == 17]
    assert any(p.window_us > 50_000 for p in app3)
