"""Regenerates Fig 4b: injection time breakdown at 1.3K instructions.

Paper: the agent path decomposes into verify / JIT compile / other,
with verify+JIT >= 90%; the RDX path contains neither phase (§6).
"""

from repro.exp.fig4b import PAPER, run_fig4b
from repro.exp.harness import format_table


def test_bench_fig4b(benchmark):
    result = benchmark.pedantic(run_fig4b, rounds=1, iterations=1)
    rows = [
        ("agent", phase, us) for phase, us in result.agent_phases_us.items()
    ] + [("rdx", phase, us) for phase, us in result.rdx_phases_us.items()]
    print()
    print(
        format_table(
            f"Fig 4b -- per-phase breakdown at {result.insn_size} insns (us)",
            ["path", "phase", "time (us)"],
            rows,
            note=(
                f"agent verify+JIT share: "
                f"{result.agent_verify_jit_share * 100:.1f}% "
                f"(paper: >= {PAPER['verify_jit_share_min'] * 100:.0f}%)"
            ),
        )
    )
    assert result.agent_verify_jit_share >= PAPER["verify_jit_share_min"]
    assert "verify" not in result.rdx_phases_us
    assert result.rdx_total_us < result.agent_total_us / 20
