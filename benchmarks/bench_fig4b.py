"""Regenerates Fig 4b: injection time breakdown at 1.3K instructions.

Paper: the agent path decomposes into verify / JIT compile / other,
with verify+JIT >= 90%; the RDX path contains neither phase (§6).
Alongside the table this bench emits the telemetry snapshot gathered
while the workload ran -- ``rdx.deploy.latency_us`` here is the
simulated counterpart of the paper's Fig 4b deploy bar.
"""

from repro.exp.fig4b import PAPER, run_fig4b
from repro.exp.harness import format_table, make_testbed, write_bench_json


def test_bench_fig4b(benchmark):
    bed = make_testbed()
    result = benchmark.pedantic(
        run_fig4b, kwargs={"testbed": bed}, rounds=1, iterations=1
    )
    rows = [
        ("agent", phase, us) for phase, us in result.agent_phases_us.items()
    ] + [("rdx", phase, us) for phase, us in result.rdx_phases_us.items()]
    print()
    print(
        format_table(
            f"Fig 4b -- per-phase breakdown at {result.insn_size} insns (us)",
            ["path", "phase", "time (us)"],
            rows,
            note=(
                f"agent verify+JIT share: "
                f"{result.agent_verify_jit_share * 100:.1f}% "
                f"(paper: >= {PAPER['verify_jit_share_min'] * 100:.0f}%)"
            ),
        )
    )

    # Telemetry gathered during the run, next to the figure it backs.
    registry = bed.obs.registry
    histo_rows = [
        (row["name"], row["count"], row["p50"], row["p99"], row["max"])
        for row in registry.snapshot()
        if row["type"] == "histogram" and row["count"]
    ]
    print()
    print(
        format_table(
            "Telemetry snapshot (us)",
            ["metric", "count", "p50", "p99", "max"],
            histo_rows,
            note=(
                f"cache hit/miss: "
                f"{registry.counter('rdx.cache.hit').value:.0f}/"
                f"{registry.counter('rdx.cache.miss').value:.0f}"
            ),
        )
    )
    deploy = registry.get("rdx.deploy.latency_us")
    json_rows = [
        {"metric": f"{path}.{phase}_us", "value": us, "unit": "us",
         "sim_time": bed.sim.now}
        for path, phases in (
            ("agent", result.agent_phases_us),
            ("rdx", result.rdx_phases_us),
        )
        for phase, us in phases.items()
    ]
    json_rows.append(
        {"metric": "agent.total_us", "value": result.agent_total_us,
         "unit": "us", "sim_time": bed.sim.now}
    )
    json_rows.append(
        {"metric": "rdx.total_us", "value": result.rdx_total_us,
         "unit": "us", "sim_time": bed.sim.now}
    )
    json_rows.append(
        {"metric": "rdx.deploy_latency_p50_us",
         "value": deploy.percentile(50), "unit": "us", "sim_time": bed.sim.now}
    )
    print(f"results: {write_bench_json('fig4b', json_rows)}")
    benchmark.extra_info["rdx_deploy_latency_p50_us"] = deploy.percentile(50)
    benchmark.extra_info["rdx_deploy_latency_p99_us"] = deploy.percentile(99)
    benchmark.extra_info["rdx_cache_hits"] = registry.counter("rdx.cache.hit").value

    assert deploy.count >= 2  # warm + measured deploy both instrumented
    assert result.agent_verify_jit_share >= PAPER["verify_jit_share_min"]
    assert "verify" not in result.rdx_phases_us
    assert result.rdx_total_us < result.agent_total_us / 20
