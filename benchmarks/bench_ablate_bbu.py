"""Ablation: Big Bubble Update vs eventual consistency on rdx_broadcast.

With BBU, in-flight requests buffer for the (microsecond) bubble and
no probe ever observes mixed logic; without it, the same broadcast
leaves a short mixed-logic window.  The bench measures both, plus the
buffer occupancy BBU actually required.
"""

from repro.core.api import bootstrap_sandbox, rdx_broadcast
from repro.core.control_plane import RdxControlPlane
from repro.exp.harness import format_table
from repro.mesh.apps import AppSpec, MicroserviceApp
from repro.mesh.consistency import ConsistencyProbe
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.wasm.filters import make_header_filter


def run_mode(use_bbu: bool):
    sim = Simulator()
    app = MicroserviceApp(sim, AppSpec(n_services=8, with_agents=False))
    control_host = Host(sim, "ctl", cores=8, dram_bytes=32 * 2**20)
    app.fabric.attach(control_host)
    control = RdxControlPlane(control_host)
    codeflows = []
    for service in app.services():
        sandbox = app.pods[service].proxy.sandbox
        bootstrap_sandbox(sandbox)
        codeflows.append(sim.run_process(control.create_codeflow(sandbox)))

    v1 = [make_header_filter(version=1) for _ in codeflows]
    sim.run_process(rdx_broadcast(codeflows, v1, "filter0"))

    probe = ConsistencyProbe(app, interval_us=2.0)
    probe.start(duration_us=1_000_000)
    v2 = [make_header_filter(version=2) for _ in codeflows]
    outcome = sim.run_process(
        rdx_broadcast(codeflows, v2, "filter0", use_bbu=use_bbu)
    )
    sim.run(until=sim.now + 100)
    probe.stop()
    sim.run()
    mixed = probe.result().mixed_count
    # Buffer occupancy at 10M req/s for the observed bubble.
    buffered = 10_000_000 * outcome.bubble_window_us / 1e6 if use_bbu else 0
    return mixed, outcome.bubble_window_us, buffered


def test_bench_ablate_bbu(benchmark):
    results = benchmark.pedantic(
        lambda: (run_mode(use_bbu=False), run_mode(use_bbu=True)),
        rounds=1,
        iterations=1,
    )
    (ec_mixed, _ec_window, _), (bbu_mixed, bbu_window, buffered) = results
    print()
    print(
        format_table(
            "Ablation: BBU vs eventual consistency (8-node broadcast)",
            ["scheme", "mixed-logic probes", "bubble (us)",
             "buffered @10M req/s"],
            [
                ("eventual consistency", ec_mixed, 0.0, "n/a"),
                ("Big Bubble Update", bbu_mixed, bbu_window, f"{buffered:.0f}"),
            ],
            note="paper §4: BBU buffers become practical at RDX speeds",
        )
    )
    assert bbu_mixed == 0
    assert buffered < 100_000  # vs ~1M for a 100 ms agent window
