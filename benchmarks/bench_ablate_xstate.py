"""Ablation: Meta-XState indirection vs the §3.4 strawman.

The strawman pre-registers, for every XState *type*, instances at the
maximum allowed size.  The Meta-XState design allocates exactly what
each runtime request needs from one scratchpad, at the cost of one
indirection qword per instance.  This bench quantifies the memory
trade on a realistic mix of map geometries.
"""

from repro import params
from repro.core.xstate import RemoteScratchpad, XStateSpec
from repro.ebpf.maps import MapType
from repro.exp.harness import format_table

#: A runtime mix: mostly small counters, a few mid-size tables.
WORKLOAD = (
    [XStateSpec(f"ctr{i}", MapType.ARRAY, 4, 8, 16) for i in range(24)]
    + [XStateSpec(f"tbl{i}", MapType.HASH, 8, 64, 256) for i in range(6)]
    + [XStateSpec(f"big{i}", MapType.HASH, 16, 256, 1024) for i in range(2)]
)

#: The strawman's "maximal allowed size" per type.
STRAWMAN_MAX_ENTRIES = 4_096
STRAWMAN_VALUE_SIZE = 256
STRAWMAN_KEY_SIZE = 16
STRAWMAN_INSTANCES = 32  # registered slots per type at boot


def run_ablation():
    pad = RemoteScratchpad(0x10000, 64 << 20)
    for spec in WORKLOAD:
        pad.allocate(spec)
    meta_overhead = params.XSTATE_META_SLOTS * params.XSTATE_META_ENTRY_BYTES
    indirection_bytes = pad.bytes_live + meta_overhead

    strawman_slot = (
        8 + STRAWMAN_KEY_SIZE + STRAWMAN_VALUE_SIZE
    ) * STRAWMAN_MAX_ENTRIES
    strawman_bytes = strawman_slot * STRAWMAN_INSTANCES
    return indirection_bytes, strawman_bytes, len(WORKLOAD)


def test_bench_ablate_xstate(benchmark):
    indirection, strawman, count = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            "Ablation: XState memory, Meta-indirection vs strawman",
            ["design", "bytes reserved", "instances"],
            [
                ("Meta-XState indirection", indirection, count),
                ("strawman (max-size pools)", strawman, STRAWMAN_INSTANCES),
            ],
            note=(
                f"waste factor {strawman / indirection:.0f}x; indirection "
                "adds one qword per instance and one pointer chase per access"
            ),
        )
    )
    assert indirection * 10 < strawman
