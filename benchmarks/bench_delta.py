"""Delta-deploy ablation: dirty chunks vs the full-image fast path.

The delta path (``RDX_DELTA_DEPLOY=1``) diffs the newly linked image
against the target's resident baseline at MTU-chunk granularity and
ships only the cache-line-trimmed dirty spans plus the metadata
descriptor; the ablation arm (``RDX_DELTA_DEPLOY=0``) reruns the same
one-instruction hotpatch chain on the full-image pipelined path.

Mode selection mirrors CI's matrix: with ``RDX_DELTA_DEPLOY`` unset,
both arms run in-process and the >= 5x bytes-moved floor is asserted
here; with the variable set, only that arm runs.

Results land in ``BENCH_DELTA.json`` (rows of
``{bench, metric, value, unit, sim_time}``) under ``$RDX_BENCH_DIR``.
"""

import os

from repro.exp.delta_deploy import run_delta_deploy
from repro.exp.harness import format_table, write_bench_json

#: Acceptance floor: a one-instruction hotpatch to the 8 KB program
#: must move at least 5x fewer bytes than the full-image fast path.
MIN_BYTES_RATIO = 5.0


def _modes_from_env():
    value = os.environ.get("RDX_DELTA_DEPLOY")
    if value is None:
        return ("delta", "full")
    if value in ("0", "false", "no"):
        return ("full",)
    return ("delta",)


def test_bench_delta(benchmark):
    modes = _modes_from_env()
    result = benchmark.pedantic(
        run_delta_deploy, kwargs={"modes": modes}, rounds=1, iterations=1
    )

    table_rows = []
    json_rows = []
    for name, mode in result.modes.items():
        for metric, value, unit in (
            ("hotpatch_us", mode.hotpatch_us, "us"),
            ("hotpatch_bytes", mode.hotpatch_bytes, "bytes"),
            ("hotpatch_chunks", mode.hotpatch_chunks, "chunks"),
            ("deploy_cold_us", mode.deploy_cold_us, "us"),
            ("delta_deploys", mode.delta_deploys, "count"),
            ("delta_fallbacks", mode.delta_fallbacks, "count"),
        ):
            table_rows.append((name, metric, value))
            json_rows.append(
                {
                    "metric": f"{name}.{metric}",
                    "value": value,
                    "unit": unit,
                    "sim_time": mode.sim_time_us,
                }
            )

    note = ""
    if result.bytes_ratio is not None:
        json_rows.append(
            {"metric": "ratio.bytes_moved", "value": result.bytes_ratio,
             "unit": "x"}
        )
        json_rows.append(
            {"metric": "ratio.hotpatch_latency", "value": result.latency_ratio,
             "unit": "x"}
        )
        note = (
            f"bytes moved: {result.bytes_ratio:.1f}x fewer on the delta arm "
            f"(floor: {MIN_BYTES_RATIO:.0f}x), latency "
            f"{result.latency_ratio:.2f}x"
        )
    path = write_bench_json("DELTA", json_rows)

    print()
    print(
        format_table(
            f"Delta hotpatch -- {result.insn_size} insns "
            f"({result.image_bytes} image bytes)",
            ["mode", "metric", "value"],
            table_rows,
            note=note,
        )
    )
    print(f"results: {path}")

    fast = result.modes.get("delta")
    if fast is not None:
        benchmark.extra_info["delta_hotpatch_bytes"] = fast.hotpatch_bytes
        # The acceptance shape: ~1 chunk + commit CAS for a
        # one-instruction edit (the edited insn and the image CRC
        # share the trailing MTU chunk).
        assert fast.mode_used == "delta"
        assert fast.hotpatch_chunks == 1
        assert fast.delta_deploys == 1
        # v1 (no owner) and v2 (no baseline yet) fell back, counted.
        assert fast.delta_fallbacks == 2
    slow = result.modes.get("full")
    if slow is not None:
        benchmark.extra_info["full_hotpatch_bytes"] = slow.hotpatch_bytes
        assert slow.mode_used == "full"
        assert slow.delta_deploys == 0

    if fast is not None and slow is not None:
        # Both arms installed the same v3 semantics.
        assert fast.exec_r0 == slow.exec_r0
        assert result.bytes_ratio >= MIN_BYTES_RATIO
