"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's figures/tables and
prints a paper-vs-measured table.  Run with::

    pytest benchmarks/ --benchmark-only -s

(The ``-s`` lets the regenerated tables reach your terminal.)
"""
