"""Regenerates the §4 collective-update claim: microsecond-scale,
transactionally consistent cluster rollout with a practical BBU buffer.

The paper's §2.2 sizing example: a 10M req/s application under a
100 ms agent-style update window must buffer ~1M requests -- infeasible.
The same application under RDX's microsecond bubble buffers a handful.
"""

from repro.exp.harness import format_table
from repro.exp.tab_broadcast import PAPER, run_tab_broadcast


def test_bench_tab_broadcast(benchmark):
    result = benchmark.pedantic(
        lambda: run_tab_broadcast(group_sizes=(2, 4, 8, 16)),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            row.group_size,
            row.bubble_window_us,
            row.total_us,
            f"{row.bbu_buffer_requests:.0f}",
            f"{row.agent_buffer_requests:,.0f}",
        )
        for row in result.rows
    ]
    print()
    print(
        format_table(
            "rdx_broadcast: bubble window and BBU buffer sizing",
            ["nodes", "bubble (us)", "total (us)", "RDX buffer @10M req/s",
             "agent buffer @10M req/s"],
            rows,
            note=f"paper: {PAPER['claim']}",
        )
    )
    for row in result.rows:
        assert row.bubble_window_us < 2_000  # microsecond-scale
        assert row.bbu_buffer_requests < row.agent_buffer_requests / 50
