"""Supplementary: per-query UDF injection, local vs RDX (§2.2 Obs 1).

The paper motivates microsecond injection with "short-lived per-query
UDF extensions": at per-query cadence, injection latency gates query
latency.  This bench runs a stream of small scan queries under both
injection paths and reports the injection share of total query time.
"""

from repro.exp.harness import format_table
from repro.net.topology import Host
from repro.sim.core import Simulator
from repro.udf.engine import Query, QueryEngine
from repro.udf.expr import Arg, BinOp, Call, Const

N_QUERIES = 40


def make_engine():
    sim = Simulator()
    host = Host(sim, "db", cores=8, dram_bytes=1 << 22)
    engine = QueryEngine(host, row_width=4)
    engine.load_table("t", [(i, i * 7, i % 13, 5) for i in range(200)])
    return sim, engine


def the_udf():
    return Call("clamp", BinOp("*", Arg(0), Const(3)), Const(10), Arg(1))


def run_local():
    sim, engine = make_engine()
    inject_total = scan_total = 0.0
    for _ in range(N_QUERIES):
        result = sim.run_process(
            engine.run_query_local(Query(udf=the_udf(), table="t"))
        )
        inject_total += result.inject_us
        scan_total += result.scan_us
    return inject_total / N_QUERIES, scan_total / N_QUERIES


def run_rdx():
    sim, engine = make_engine()
    inject_total = scan_total = 0.0
    for _ in range(N_QUERIES):
        result = sim.run_process(
            engine.run_query_rdx(Query(udf=the_udf(), table="t"), udf_key="u1")
        )
        inject_total += result.inject_us
        scan_total += result.scan_us
    return inject_total / N_QUERIES, scan_total / N_QUERIES


def test_bench_udf_pipeline(benchmark):
    results = benchmark.pedantic(
        lambda: (run_local(), run_rdx()), rounds=1, iterations=1
    )
    (local_inject, local_scan), (rdx_inject, rdx_scan) = results
    rows = [
        ("local (agent-style)", local_inject, local_scan,
         f"{local_inject / (local_inject + local_scan) * 100:.0f}%"),
        ("RDX (cached binary)", rdx_inject, rdx_scan,
         f"{rdx_inject / (rdx_inject + rdx_scan) * 100:.0f}%"),
    ]
    print()
    print(
        format_table(
            "Per-query UDF injection vs scan time (mean us/query)",
            ["path", "inject (us)", "scan (us)", "inject share"],
            rows,
            note="paper §2.2: per-query UDFs need microsecond injection",
        )
    )
    assert rdx_inject < local_inject / 3
    assert rdx_scan == local_scan  # same functional work
