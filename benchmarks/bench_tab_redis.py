"""Regenerates the §6 Redis claim: agentless eBPF lifts throughput
by up to 25.3% by removing the per-node agent "tax"."""

from repro.exp.harness import format_table
from repro.exp.tab_redis import PAPER, run_tab_redis


def test_bench_tab_redis(benchmark):
    result = benchmark.pedantic(run_tab_redis, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Redis throughput under extension management",
            ["deployment", "throughput (ops/s)"],
            [
                ("agent baseline", result.agent_ops_s),
                ("agentless (RDX)", result.rdx_ops_s),
            ],
            note=(
                f"measured improvement {result.improvement_pct:.1f}% "
                f"(paper: up to {PAPER['improvement_pct_max']}%)"
            ),
        )
    )
    assert 10 <= result.improvement_pct <= 40
