"""Deploy fast-path ablation: pipelined WR chains vs the serial path.

The pipelined path (``RDX_PIPELINED_DEPLOY=1``, the default) chains the
image + metadata writes behind one doorbell with selective signaling,
commits with a bare CAS ordered by the chain completion, serves links
from the layout-fingerprinted image cache, and runs broadcast prepare
legs concurrently under single-flight compile dedup.  The serial
ablation (``RDX_PIPELINED_DEPLOY=0``) is the pre-optimization path:
one WR, one doorbell, one blocked completion per op.

Mode selection mirrors CI's matrix: with ``RDX_PIPELINED_DEPLOY``
unset, both arms run in-process and the >= 2x speedup floor is
asserted here; with the variable set, only that arm runs (CI's
``perf-compare`` job then joins the two artifacts).

Results land in ``BENCH_deploy_pipeline.json`` (rows of
``{bench, metric, value, unit, sim_time}``) under ``$RDX_BENCH_DIR``.
"""

import os

from repro.exp.deploy_pipeline import run_deploy_pipeline
from repro.exp.harness import format_table, write_bench_json

#: The acceptance floor: the fast path must at least halve both the
#: warm single-target deploy latency and the 8-target bubble window.
MIN_SPEEDUP = 2.0


def _modes_from_env():
    value = os.environ.get("RDX_PIPELINED_DEPLOY")
    if value is None:
        return ("pipelined", "serial")
    if value in ("0", "false", "no"):
        return ("serial",)
    return ("pipelined",)


def test_bench_deploy_pipeline(benchmark):
    modes = _modes_from_env()
    result = benchmark.pedantic(
        run_deploy_pipeline, kwargs={"modes": modes}, rounds=1, iterations=1
    )

    table_rows = []
    json_rows = []
    for name, mode in result.modes.items():
        for metric, value, unit in (
            ("deploy_cold_us", mode.deploy_cold_us, "us"),
            ("deploy_warm_us", mode.deploy_warm_us, "us"),
            ("bubble_window_us", mode.bubble_window_us, "us"),
            ("broadcast_total_us", mode.broadcast_total_us, "us"),
            ("compiles_run", mode.compiles_run, "count"),
            ("prepare_coalesced", mode.prepare_coalesced, "count"),
            ("link_cache_hits", mode.link_cache_hits, "count"),
            ("link_cache_misses", mode.link_cache_misses, "count"),
            ("wrs_per_doorbell_p50", mode.wrs_per_doorbell_p50, "wrs"),
        ):
            table_rows.append((name, metric, value))
            json_rows.append(
                {
                    "metric": f"{name}.{metric}",
                    "value": value,
                    "unit": unit,
                    "sim_time": mode.sim_time_us,
                }
            )

    note = ""
    if result.deploy_speedup is not None:
        json_rows.append(
            {"metric": "speedup.deploy_warm", "value": result.deploy_speedup,
             "unit": "x"}
        )
        json_rows.append(
            {"metric": "speedup.bubble_window", "value": result.window_speedup,
             "unit": "x"}
        )
        note = (
            f"speedup: warm deploy {result.deploy_speedup:.2f}x, "
            f"bubble window {result.window_speedup:.2f}x "
            f"(floor: {MIN_SPEEDUP:.1f}x)"
        )
    path = write_bench_json("deploy_pipeline", json_rows)

    print()
    print(
        format_table(
            f"Deploy fast path -- {result.insn_size} insns, "
            f"{result.n_targets}-target broadcast",
            ["mode", "metric", "value"],
            table_rows,
            note=note,
        )
    )
    print(f"results: {path}")

    for name, mode in result.modes.items():
        benchmark.extra_info[f"{name}_deploy_warm_us"] = mode.deploy_warm_us
        benchmark.extra_info[f"{name}_bubble_window_us"] = mode.bubble_window_us
        # Registry dedup holds per arm: v1 + v2 compile exactly once
        # each no matter how many targets asked.
        assert mode.compiles_run == 2
        assert mode.bubble_window_us > 0
        assert mode.deploy_warm_us <= mode.deploy_cold_us

    fast = result.modes.get("pipelined")
    if fast is not None:
        # The chain + caches actually engaged on the fast arm.
        assert fast.wrs_per_doorbell_p50 >= 2
        assert fast.prepare_coalesced > 0
        assert fast.link_cache_hits > 0
    slow = result.modes.get("serial")
    if slow is not None:
        assert slow.link_cache_hits == 0  # ablation: cache disabled

    if result.deploy_speedup is not None:
        assert result.deploy_speedup >= MIN_SPEEDUP
        assert result.window_speedup >= MIN_SPEEDUP
