"""Benchmarks the deploy-reliability layer: broadcasts under faults.

Runs the crash campaign (torn writes, bit flips, transient transport
errors, node crashes, link partitions) and reports how each round
resolved plus the cost of the transactional abort path.  The headline
invariants: no round ever strands a reachable target behind a raised
bubble flag (§2.2 agent lockout), transient faults are absorbed by the
retry policy, and aborts stay microsecond-scale (rollback is a pointer
flip, not a re-deploy).
"""

from repro.exp.fault_campaign import run_fault_campaign
from repro.exp.harness import format_table


def test_bench_broadcast_faults(benchmark):
    result = benchmark.pedantic(
        lambda: run_fault_campaign(n_hosts=4, rounds=12, seed=3),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            entry.index,
            entry.fault,
            entry.target,
            "committed" if entry.committed else "aborted",
            entry.retries,
            entry.abort_us,
        )
        for entry in result.rounds
    ]
    print()
    print(
        format_table(
            "Broadcast fault campaign (4 nodes, 12 rounds)",
            ["round", "fault", "target", "outcome", "retries", "abort (us)"],
            rows,
            note=(
                f"{result.committed} committed / {result.aborts} aborted, "
                f"{result.retries_total} transport retries absorbed or "
                f"exhausted, {result.stranded} stranded-bubble rounds"
            ),
        )
    )
    # The §4 invariant: no target is ever stranded buffering.
    assert result.stranded == 0
    # Every round resolves one way or the other.
    assert result.committed + result.aborts == result.rounds_run
    # Aborts are microsecond-scale (pointer flips, not re-deploys).
    for entry in result.rounds:
        if entry.aborted:
            assert entry.abort_us < 1_000
