"""Ablation: rdx_tx staged flip vs in-place RDMA overwrite (§3.5 #1).

Without the transaction primitive, an updater overwrites the live
image in place and relies on cache eviction to propagate it; while
the landing + eviction window is open, the data path's view mixes old
and new cache lines and decoding the torn image crashes the sandbox.
With rdx_tx the new image is staged at a fresh address and a single
qword flip commits it -- the data path never sees a partial object.

The bench alternates between two same-length images under heavy cache
pressure (CPKI 60) and counts data-path crashes per scheme.
"""

from repro.ebpf.stress import make_stress_program
from repro.errors import SandboxCrash
from repro.exp.harness import format_table, make_testbed

IMAGE_INSNS = 40_000
UPDATES = 12
CPKI = 60.0


def run_mode(use_tx: bool) -> tuple[int, int]:
    bed = make_testbed(n_hosts=1, cores_per_host=4, cpki=CPKI)
    v1 = make_stress_program(IMAGE_INSNS, seed=1, name="ext")
    v2 = make_stress_program(IMAGE_INSNS, seed=2, name="ext")
    bed.sim.run_process(bed.control.inject(bed.codeflow, v1, "ingress"))
    record = bed.codeflow.deployed["ext"]

    linked = {}
    for version in (v1, v2):
        entry = bed.sim.run_process(
            bed.control.prepare_for(bed.codeflow, version)
        )
        linked[version.name + str(version.prog_id)] = bed.codeflow.linker.link(
            entry.binary
        )[0]
    images = list(linked.values())
    assert len(images[0].code) == len(images[1].code)

    crashes = 0
    executions = 0
    stop = {"done": False}

    def data_path():
        nonlocal crashes, executions
        while not stop["done"]:
            try:
                result, cost = bed.sandbox.run_hook("ingress", bytes(256))
                if result is not None:
                    executions += 1
                yield from bed.host.cpu.run(cost)
            except SandboxCrash:
                crashes += 1
                bed.sandbox.crashed = False  # restart the pod
            yield bed.sim.timeout(5.0)

    def updater():
        for round_index in range(UPDATES):
            image = images[round_index % 2]
            if use_tx:
                # Staged write + pointer flip (the rdx_tx discipline).
                new_addr = bed.codeflow.code_allocator.alloc(len(image.code), 64)
                hook_addr = bed.sandbox.hook_table.slot_addr("ingress")
                yield from bed.codeflow.sync.tx(
                    obj_addr=new_addr,
                    obj_bytes=image.code,
                    qword_addr=hook_addr,
                    new_qword=new_addr,
                )
                yield from bed.codeflow.sync.cc_event(hook_addr, 8)
            else:
                # Vanilla: overwrite the live image in place; the CPU
                # picks the change up line by line as eviction refills.
                yield from bed.codeflow.sync.write(record.code_addr, image.code)
            yield bed.sim.timeout(150.0)
        stop["done"] = True

    bed.sim.spawn(data_path(), name="datapath")
    bed.sim.run_process(updater())
    stop["done"] = True
    bed.sim.run(until=bed.sim.now + 50)
    return crashes, executions


def test_bench_ablate_tx(benchmark):
    results = benchmark.pedantic(
        lambda: (run_mode(use_tx=False), run_mode(use_tx=True)),
        rounds=1,
        iterations=1,
    )
    (vanilla_crashes, vanilla_execs), (tx_crashes, tx_execs) = results
    print()
    print(
        format_table(
            "Ablation: in-place overwrite vs rdx_tx staged flip",
            ["scheme", "data-path crashes", "clean executions"],
            [
                ("in-place RDMA write", vanilla_crashes, vanilla_execs),
                ("rdx_tx staged flip", tx_crashes, tx_execs),
            ],
            note="crashes = torn images decoded mid-update (§3.5 issue 1)",
        )
    )
    assert vanilla_crashes > 0  # the hazard is real
    assert tx_crashes == 0  # and rdx_tx removes it
    assert tx_execs > 0
