"""Regenerates the §4 rollback claim: RDX reverts faulty extensions in
microseconds even under full CPU load, avoiding the agent path's
lockout effect."""

from repro.exp.harness import format_table
from repro.exp.tab_rollback import PAPER, run_tab_rollback


def test_bench_tab_rollback(benchmark):
    result = benchmark.pedantic(run_tab_rollback, rounds=1, iterations=1)
    print()
    print(
        format_table(
            f"Rollback latency at {result.load_level * 100:.0f}% CPU load",
            ["path", "rollback latency (us)"],
            [
                ("agent re-inject", result.agent_rollback_us),
                ("RDX flip+flush", result.rdx_rollback_us),
            ],
            note=(
                f"speedup {result.speedup:,.0f}x; paper: {PAPER['claim']}"
            ),
        )
    )
    assert result.rdx_rollback_us < 100
    assert result.speedup > 500
