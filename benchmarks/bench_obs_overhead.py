"""Observability overhead gate: RDX_OBS=1 vs RDX_OBS=0 wall clock.

The telemetry plane is supposed to be free where it matters -- the
sandbox side is agentless by construction (one-sided scrapes cost zero
target CPU events; the sim asserts that property in
``tests/test_obs_scrape.py``).  What *can* regress is the control
plane's own bookkeeping: segment stores on hook execs, trace events on
every chain/CAS/flush, span accounting.  This bench drives the same
warm pipelined deploy loop with the obs plane on and off and gates the
wall-clock ratio.

Both arms run in-process by flipping :data:`repro.params.RDX_OBS`
(a module global read at call time, like ``RDX_PIPELINED_DEPLOY``).
Plain ``time.perf_counter`` timing, with the arms *interleaved* in
alternating order and gated on the best paired ratio: a loaded CI
runner drifts over seconds, so timing all of one arm and then all of
the other would fold that drift straight into the ratio.  Each pair
runs back-to-back, and any single clean pair under the gate passes.

Results land in ``BENCH_OBS.json`` under ``$RDX_BENCH_DIR``.
"""

import time

from repro import params
from repro.ebpf.stress import make_stress_program
from repro.exp.harness import format_table, make_testbed, write_bench_json

#: Warm deploys timed per measurement (one testbed, cache hot).
DEPLOYS = 60
#: Interleaved on/off measurement pairs; the gate takes the best pair.
PAIRS = 5
#: The gate: obs-on must stay within 15% of obs-off wall clock.
MAX_RATIO = 1.15


def _run_warm_deploys() -> float:
    """One measurement: build a bed, warm the caches, time the loop."""
    bed = make_testbed(n_hosts=1, cores_per_host=8)
    program = make_stress_program(1_300, seed=7)
    # Warm-up: cold validate + JIT + link, outside the timed window.
    bed.sim.run_process(bed.control.inject(bed.codeflow, program, "ingress"))
    started = time.perf_counter()
    for _ in range(DEPLOYS):
        bed.sim.run_process(
            bed.control.inject(bed.codeflow, program, "ingress")
        )
    return time.perf_counter() - started


def _measure(arm_obs: bool) -> float:
    saved = params.RDX_OBS
    params.RDX_OBS = arm_obs
    try:
        return _run_warm_deploys()
    finally:
        params.RDX_OBS = saved


def test_bench_obs_overhead():
    _measure(True)  # process warm-up pass, discarded
    pairs = []
    for index in range(PAIRS):
        if index % 2 == 0:
            on, off = _measure(True), _measure(False)
        else:
            off, on = _measure(False), _measure(True)
        pairs.append((on, off))
    with_obs, without_obs = min(
        pairs, key=lambda pair: pair[0] / pair[1] if pair[1] else 1.0
    )
    ratio = with_obs / without_obs if without_obs else 1.0

    rows = [
        ("warm_deploys_obs_on_s", with_obs, "s"),
        ("warm_deploys_obs_off_s", without_obs, "s"),
        ("obs_overhead_ratio", ratio, "ratio"),
    ]
    path = write_bench_json(
        "OBS",
        [
            {"metric": metric, "value": value, "unit": unit}
            for metric, value, unit in rows
        ],
    )
    print()
    print(
        format_table(
            f"Observability overhead -- {DEPLOYS} warm deploys, "
            f"best of {PAIRS} interleaved pairs",
            ["metric", "value", "unit"],
            rows,
            note=f"gate: ratio <= {MAX_RATIO} | wrote {path}",
        )
    )
    assert ratio <= MAX_RATIO, (
        f"obs plane costs {ratio:.2f}x on the warm deploy path "
        f"(gate {MAX_RATIO}x): {with_obs:.3f}s vs {without_obs:.3f}s"
    )


if __name__ == "__main__":
    test_bench_obs_overhead()
