"""Regenerates the §6 mesh claim: Wasm filters over RDX improve
microservice performance by up to 65% under CPU interference."""

from repro.exp.harness import format_table
from repro.exp.tab_mesh import PAPER, run_tab_mesh


def test_bench_tab_mesh(benchmark):
    result = benchmark.pedantic(run_tab_mesh, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Microservice completion under Wasm filter churn",
            ["deployment", "completion (req/s)"],
            [
                ("per-pod agents", result.agent_completion_s),
                ("agentless (RDX)", result.rdx_completion_s),
            ],
            note=(
                f"measured improvement {result.improvement_pct:.1f}% "
                f"(paper: up to {PAPER['improvement_pct_max']}%)"
            ),
        )
    )
    assert 30 <= result.improvement_pct <= 110
