"""Regenerates Fig 5: incoherence time, vanilla RDMA vs RDX sync.

Paper series: median incoherence up to ~746 us at CPKI=5 without sync
primitives, decaying with cache pressure; ~2 us flat with
rdx_tx + rdx_cc_event (§3.5, §6).
"""

from repro.exp.fig5 import PAPER, run_fig5
from repro.exp.harness import format_table


def test_bench_fig5(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig5(cpki_levels=(5, 10, 15, 20, 25, 30, 35, 40), trials=31),
        rounds=1,
        iterations=1,
    )
    rows = [
        (point.cpki, point.vanilla_median_us, point.rdx_median_us)
        for point in result.points
    ]
    print()
    print(
        format_table(
            "Fig 5 -- median incoherence time vs CPKI",
            ["CPKI", "vanilla RDMA (us)", "RDX (us)"],
            rows,
            note=(
                f"paper: vanilla up to ~{PAPER['vanilla_max_us']:.0f} us at "
                f"low CPKI; RDX ~{PAPER['rdx_us']:.0f} us at every level"
            ),
        )
    )
    low = result.points[0]
    assert 400 <= low.vanilla_median_us <= 1_200  # ~746 us at CPKI 5
    vanilla = [p.vanilla_median_us for p in result.points]
    assert vanilla[-1] < vanilla[0] / 3  # decays with CPKI
    assert all(p.rdx_median_us < 10 for p in result.points)  # ~2 us flat
