"""Rack-scale fan-out: bubble windows vs N, and kernel events/sec.

Two sweeps, both recorded in ``BENCH_SCALE.json``:

* **Broadcast windows** -- one group update at each N under up to
  three arms: ``flat`` (the PR-4 fan-out, the ablation baseline),
  ``tree`` (relay fan-out, ``RDX_TREE_BROADCAST``), and ``sharded``
  (tree fan-out split across ``RDX_BROADCAST_SHARDS`` control planes
  with the cross-shard commit).  The acceptance shape is sublinear
  window growth on the tree arm -- window(N=256) <= 4x window(N=16) --
  while the flat arm grows ~linearly until the link cache overflows
  and it falls off a cliff (re-validation inside the window).
* **Kernel throughput** -- the pure sim-kernel stress at
  ``RDX_SCALE_KERNEL_N`` nodes under the fast (``RDX_SIM_FAST``,
  default) and legacy dispatch loops.  The fast arm elides grant and
  timeout events, so raw events/sec undercounts it; the comparable
  number is *normalized* throughput: the legacy arm's event count for
  the same workload divided by each arm's wall time.  Wall clocks are
  noisy, so each arm reports its best of ``RDX_SCALE_KERNEL_REPS``.

Knobs (all env vars, CI's scale-smoke job shrinks the sweep):

* ``RDX_SCALE_NS`` -- comma-separated broadcast sizes (default
  ``16,64,256``);
* ``RDX_SCALE_ARMS`` -- subset of ``tree,flat,sharded`` (default all);
* ``RDX_SCALE_KERNEL_N`` -- kernel stress node count (default 1024;
  0 skips the kernel sweep);
* ``RDX_SCALE_KERNEL_REPS`` -- wall-clock reps per kernel arm
  (default 3).
"""

import os

from repro.exp.harness import format_table, write_bench_json
from repro.exp.scale import broadcast_window, kernel_throughput

#: Acceptance: tree window at N=256 within 4x the N=16 window.
MAX_TREE_GROWTH = 4.0
#: Acceptance: >= 2x normalized kernel events/sec at N=1024.
MIN_KERNEL_RATIO = 2.0
#: Shards on the sharded arm (matches RDX_BROADCAST_SHARDS' default).
SHARDS = 4


def _ints_from_env(name, default):
    value = os.environ.get(name)
    if value is None:
        return default
    return tuple(int(part) for part in value.split(",") if part.strip())


def _arms_from_env():
    value = os.environ.get("RDX_SCALE_ARMS")
    if value is None:
        return ("tree", "flat", "sharded")
    return tuple(part.strip() for part in value.split(",") if part.strip())


def _run_broadcast_sweep(ns, arms):
    windows = {}
    for arm in arms:
        for n in ns:
            if arm == "sharded" and n < SHARDS:
                continue
            windows[arm, n] = broadcast_window(
                n,
                tree=(arm != "flat"),
                shards=SHARDS if arm == "sharded" else 1,
            )
    return windows


def _run_kernel_sweep(kernel_n, reps):
    """Best-of-``reps`` wall clocks per arm; returns per-arm rows plus
    the normalized fast/legacy ratio."""
    best = {}
    for arm, fast in (("legacy", False), ("fast", True)):
        results = [kernel_throughput(kernel_n, fast=fast) for _ in range(reps)]
        best[arm] = max(results)  # (events/wall_sec, events)
    legacy_tput, legacy_events = best["legacy"]
    fast_tput, fast_events = best["fast"]
    # Same workload, same sim end time; the fast arm just dispatches
    # fewer bookkeeping events.  Normalize both arms to the legacy
    # event count so the ratio measures wall time, not event elision.
    fast_wall = fast_events / fast_tput
    fast_norm = legacy_events / fast_wall
    return {
        "legacy": {"raw": legacy_tput, "norm": legacy_tput,
                   "events": legacy_events},
        "fast": {"raw": fast_tput, "norm": fast_norm, "events": fast_events},
    }, fast_norm / legacy_tput


def test_bench_scale(benchmark):
    ns = _ints_from_env("RDX_SCALE_NS", (16, 64, 256))
    arms = _arms_from_env()
    kernel_n = _ints_from_env("RDX_SCALE_KERNEL_N", (1024,))[0]
    reps = _ints_from_env("RDX_SCALE_KERNEL_REPS", (3,))[0]

    windows = benchmark.pedantic(
        _run_broadcast_sweep, kwargs={"ns": ns, "arms": arms},
        rounds=1, iterations=1,
    )
    kernel, kernel_ratio = (None, None)
    if kernel_n:
        kernel, kernel_ratio = _run_kernel_sweep(kernel_n, reps)

    table_rows = []
    json_rows = []
    for (arm, n), window in sorted(windows.items()):
        table_rows.append((arm, f"N={n}", window))
        json_rows.append(
            {"metric": f"{arm}.bubble_window_us", "n": n,
             "value": window, "unit": "us"}
        )
    if kernel is not None:
        for arm in ("legacy", "fast"):
            table_rows.append(
                (f"kernel.{arm}", f"N={kernel_n}", kernel[arm]["norm"])
            )
            json_rows.append(
                {"metric": f"kernel.{arm}.events_per_sec", "n": kernel_n,
                 "value": kernel[arm]["norm"], "unit": "ev/s"}
            )
            json_rows.append(
                {"metric": f"kernel.{arm}.events", "n": kernel_n,
                 "value": kernel[arm]["events"], "unit": "count"}
            )
        json_rows.append(
            {"metric": "ratio.kernel_events_per_sec", "n": kernel_n,
             "value": kernel_ratio, "unit": "x"}
        )

    notes = []
    tree_lo = windows.get(("tree", min(ns)))
    tree_hi = windows.get(("tree", max(ns)))
    if tree_lo and tree_hi:
        growth = tree_hi / tree_lo
        json_rows.append(
            {"metric": "ratio.tree_window_growth", "n": max(ns),
             "value": growth, "unit": "x"}
        )
        notes.append(
            f"tree window N={max(ns)} vs N={min(ns)}: {growth:.2f}x "
            f"(ceiling {MAX_TREE_GROWTH:.0f}x)"
        )
    if kernel_ratio is not None:
        notes.append(
            f"kernel {kernel_ratio:.2f}x normalized ev/s, fast vs legacy "
            f"(floor {MIN_KERNEL_RATIO:.0f}x, best of {reps})"
        )
    path = write_bench_json("SCALE", json_rows)

    print()
    print(
        format_table(
            f"Rack-scale fan-out -- arms {', '.join(arms)}",
            ["arm", "scale", "value"],
            table_rows,
            note="; ".join(notes),
        )
    )
    print(f"results: {path}")

    if tree_lo and tree_hi and max(ns) >= 4 * min(ns):
        benchmark.extra_info["tree_window_growth"] = tree_hi / tree_lo
        assert tree_hi <= MAX_TREE_GROWTH * tree_lo, (
            f"tree window grew {tree_hi / tree_lo:.2f}x from N={min(ns)} "
            f"to N={max(ns)} (ceiling {MAX_TREE_GROWTH:.0f}x)"
        )
        flat_lo = windows.get(("flat", min(ns)))
        flat_hi = windows.get(("flat", max(ns)))
        if flat_lo and flat_hi:
            # The ablation: flat fan-out scales (at least) linearly,
            # strictly worse than the tree at the same N.
            assert flat_hi / flat_lo > tree_hi / tree_lo
            assert flat_hi > tree_hi
    if kernel_ratio is not None and kernel_n >= 1024:
        benchmark.extra_info["kernel_ratio"] = kernel_ratio
        assert kernel_ratio >= MIN_KERNEL_RATIO, (
            f"kernel fast arm only {kernel_ratio:.2f}x the legacy arm "
            f"(floor {MIN_KERNEL_RATIO:.0f}x)"
        )
