"""Sustained multi-tenant serving throughput (the §7 service tier).

One open-loop run of :func:`repro.exp.run_serve_workload` -- ~1000
tenants in three priority classes over a rack of targets -- recorded
in ``BENCH_SERVE.json``:

* ``serve.deploys_per_sec``      -- sustained completed deploys/sec;
* ``serve.latency_p{50,95,99}_us`` -- end-to-end submit -> install-
  visible latency (plus per-class p99 rows);
* ``serve.warm_service_p50_us`` / ``serve.cold_service_p50_us`` --
  execution latency split by path, and their ratio
  ``ratio.warm_latency`` (acceptance: >= 2x -- a warm-pool hit skips
  validate+JIT+link entirely, so in practice it is ~20-30x);
* ``serve.shed.<reason>``        -- the load-shedding ledger, plus
  ``serve.silent_drops`` (acceptance: exactly 0 -- every offered
  deploy is completed, failed, or attributed to a counted reason).

Knobs (env vars; CI's serve-smoke job shrinks the run):

* ``RDX_SERVE_TENANTS``      -- tenant population (default 1000);
* ``RDX_SERVE_TARGETS``      -- target sandboxes (default 8);
* ``RDX_SERVE_DURATION_US``  -- open-loop window (default 2e6);
* ``RDX_SERVE_SEED``         -- workload seed (default 7).
"""

import os

from repro.exp.harness import format_table, write_bench_json
from repro.exp.serve_workload import ServeWorkloadSpec, run_serve_workload

#: Acceptance: warm-pool service latency at least 2x better than cold.
MIN_WARM_RATIO = 2.0


def _env_int(name, default):
    return int(os.environ.get(name, default))


def _env_float(name, default):
    return float(os.environ.get(name, default))


def test_bench_serve(benchmark):
    spec = ServeWorkloadSpec(
        n_tenants=_env_int("RDX_SERVE_TENANTS", 1000),
        n_targets=_env_int("RDX_SERVE_TARGETS", 8),
        duration_us=_env_float("RDX_SERVE_DURATION_US", 2_000_000.0),
        seed=_env_int("RDX_SERVE_SEED", 7),
    )

    result, service = benchmark.pedantic(
        run_serve_workload, kwargs={"spec": spec}, rounds=1, iterations=1,
    )

    shed_total = sum(result.shed.values())
    silent = result.unaccounted
    warm_ratio = (
        result.cold_service_p50_us / result.warm_service_p50_us
        if result.warm_service_p50_us > 0
        else 0.0
    )

    json_rows = [
        {"metric": "serve.deploys_per_sec", "value": result.deploys_per_sec,
         "unit": "deploys/s", "sim_time": result.duration_us},
        {"metric": "serve.offered", "value": result.offered, "unit": "count"},
        {"metric": "serve.completed", "value": result.completed,
         "unit": "count"},
        {"metric": "serve.failed", "value": result.failed, "unit": "count"},
        {"metric": "serve.shed_total", "value": shed_total, "unit": "count"},
        {"metric": "serve.silent_drops", "value": silent, "unit": "count"},
        {"metric": "serve.latency_p50_us", "value": result.latency_p50_us,
         "unit": "us"},
        {"metric": "serve.latency_p95_us", "value": result.latency_p95_us,
         "unit": "us"},
        {"metric": "serve.latency_p99_us", "value": result.latency_p99_us,
         "unit": "us"},
        {"metric": "serve.warm_service_p50_us",
         "value": result.warm_service_p50_us, "unit": "us"},
        {"metric": "serve.cold_service_p50_us",
         "value": result.cold_service_p50_us, "unit": "us"},
        {"metric": "ratio.warm_latency", "value": warm_ratio, "unit": "x"},
        {"metric": "serve.warm_hits", "value": result.warm_hits,
         "unit": "count"},
        {"metric": "serve.warm_misses", "value": result.warm_misses,
         "unit": "count"},
        {"metric": "serve.warm_evictions", "value": result.warm_evictions,
         "unit": "count"},
    ]
    for reason, count in sorted(result.shed.items()):
        json_rows.append(
            {"metric": f"serve.shed.{reason}", "value": count,
             "unit": "count"}
        )
    for name, p99 in sorted(result.per_class_p99_us.items()):
        json_rows.append(
            {"metric": f"serve.{name}.latency_p99_us", "value": p99,
             "unit": "us"}
        )
    path = write_bench_json("SERVE", json_rows)

    table_rows = [
        ("deploys/sec (sustained)", result.deploys_per_sec),
        ("latency p50, us", result.latency_p50_us),
        ("latency p99, us", result.latency_p99_us),
        ("warm service p50, us", result.warm_service_p50_us),
        ("cold service p50, us", result.cold_service_p50_us),
        ("warm/cold ratio", warm_ratio),
        ("offered / completed", f"{result.offered} / {result.completed}"),
        ("shed (all reasons)", shed_total),
        ("silent drops", silent),
    ]
    print()
    print(
        format_table(
            f"Multi-tenant serving -- {spec.n_tenants} tenants, "
            f"{spec.n_targets} targets, {spec.duration_us / 1e6:.1f}s window",
            ["metric", "value"],
            table_rows,
            note=(
                f"shed ledger: {result.shed or '{}'}; warm pool "
                f"{result.warm_hits} hits / {result.warm_misses} misses"
            ),
        )
    )
    print(f"results: {path}")

    benchmark.extra_info["deploys_per_sec"] = result.deploys_per_sec
    benchmark.extra_info["latency_p99_us"] = result.latency_p99_us
    benchmark.extra_info["warm_ratio"] = warm_ratio

    # Acceptance: no silent drops -- the ledger balances exactly.
    assert silent == 0, (
        f"{silent} offered deploys are unaccounted for "
        f"(offered={result.offered}, completed={result.completed}, "
        f"failed={result.failed}, shed={result.shed})"
    )
    # Acceptance: the warm pool actually skips the pipeline.
    assert result.warm_hits > 0, "warm pool never hit"
    assert warm_ratio >= MIN_WARM_RATIO, (
        f"warm-pool service latency only {warm_ratio:.2f}x better than "
        f"cold (floor {MIN_WARM_RATIO:.0f}x)"
    )
