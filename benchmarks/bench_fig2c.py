"""Regenerates Fig 2c: data-path completion under injection contention.

Paper series: completion rate with vs without concurrent extension
injection across offered loads of 0-400 req/s; near saturation the
completion rate roughly halves (§2.2 Obs 3).
"""

from repro.exp.fig2c import PAPER, run_fig2c
from repro.exp.harness import format_table


def test_bench_fig2c(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig2c(rates=(100, 200, 300, 400), duration_us=800_000),
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            point.offered_req_s,
            point.completion_no_contention,
            point.completion_with_contention,
            f"{point.degradation * 100:.0f}%",
        )
        for point in result.points
    ]
    print()
    print(
        format_table(
            "Fig 2c -- request completion vs offered load",
            ["offered req/s", "w/o contention", "w/ contention", "degradation"],
            rows,
            note=f"paper: {PAPER['claim']}",
        )
    )
    assert result.points[0].degradation < 0.15  # no impact off-peak
    assert result.max_degradation() > 0.35  # near-halving at saturation
