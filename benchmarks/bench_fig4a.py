"""Regenerates Fig 4a: eBPF program load overhead, Agent vs RDX.

Paper series: across BPF-selftest stress programs of 1.3K-95K
instructions, RDX reduces injection completion time by 47x-1982x (§6).
"""

from repro.ebpf.stress import STRESS_SIZES
from repro.exp.fig4a import PAPER, run_fig4a
from repro.exp.harness import format_table


def test_bench_fig4a(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4a(sizes=STRESS_SIZES, repeats=3), rounds=1, iterations=1
    )
    rows = [
        (
            point.insn_size,
            point.agent_us / 1000.0,
            point.rdx_us,
            f"{point.speedup:.0f}x",
        )
        for point in result.points
    ]
    print()
    print(
        format_table(
            "Fig 4a -- injection completion time, Agent vs RDX",
            ["insns", "agent (ms)", "RDX (us)", "speedup"],
            rows,
            note=(
                f"paper: {PAPER['speedup_min']:.0f}x ~ "
                f"{PAPER['speedup_max']:.0f}x across 1.3K-95K insns"
            ),
        )
    )
    speedups = result.speedups()
    assert speedups == sorted(speedups)  # grows with size
    assert 30 <= speedups[0] <= 80  # ~47x at 1.3K
    assert 1_300 <= speedups[-1] <= 2_600  # ~1982x at 95K
